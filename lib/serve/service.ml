let requests_c = Obs.counter "serve.requests"
let errors_c = Obs.counter "serve.errors"
let scrapes_c = Obs.counter "serve.scrapes"
let ingest_lines_c = Obs.counter "serve.ingest.lines"
let ingest_errors_c = Obs.counter "serve.ingest.errors"
let matches_c = Obs.counter "serve.matches"

(* Scrape latencies in microseconds: loopback render-and-serialize lands in
   the sub-millisecond decades, with headroom for GC-disturbed outliers. *)
let scrape_buckets = [| 50; 100; 250; 500; 1000; 2500; 5000; 10000; 50000 |]
let prom_content_type = "text/plain; version=0.0.4; charset=utf-8"
let jsonl_content_type = "application/x-ndjson"

type t = {
  detector : Cep.Detector.t;
  max_partials : int;
  http_ingest : bool;
  help : string -> string option;
  ready : bool Atomic.t;
  next_line : int Atomic.t;
  pressured : bool Atomic.t;
}

let default_max_partials = 4096

let create ?engine ?horizon ?(max_partials = default_max_partials)
    ?(http_ingest = true) ?(help = fun _ -> None) query =
  {
    detector = Cep.Detector.create ?engine ?horizon ~max_partials query;
    max_partials;
    http_ingest;
    help;
    ready = Atomic.make true;
    next_line = Atomic.make 1;
    pressured = Atomic.make false;
  }

let detector t = t.detector
let log_start ~port = Obs.Log.emit Info "serve.start" [ ("port", Num port) ]

let log_stop t =
  Atomic.set t.ready false;
  Obs.Log.emit Info "serve.stop" []

let match_json (m : Cep.Detector.match_) =
  Report.Json.Obj
    [
      ("type", Report.Json.String "match");
      ( "tags",
        Report.Json.Obj
          (List.map (fun (e, tag) -> (e, Report.Json.String tag)) m.tags) );
      ( "timestamps",
        Report.Json.Obj
          (List.map
             (fun (e, ts) -> (e, Report.Json.Int ts))
             (Events.Tuple.bindings m.tuple)) );
    ]

let feed t (inst : Cep.Detector.instance) =
  let dropped0 = Cep.Detector.dropped_capacity t.detector in
  match Cep.Detector.feed t.detector inst with
  | exception Invalid_argument reason ->
      Obs.incr ingest_errors_c;
      Obs.Log.emit Warn "ingest.error"
        [
          ("event", Str inst.event);
          ("timestamp", Num inst.timestamp);
          ("reason", Str reason);
        ];
      Error reason
  | matches ->
      Obs.incr ingest_lines_c;
      Obs.add matches_c (List.length matches);
      if Obs.Log.enabled Info then
        List.iter
          (fun (m : Cep.Detector.match_) ->
            Obs.Log.emit Info "detector.match"
              (List.map (fun (e, tag) -> (e, Obs.Log.Str tag)) m.tags))
          matches;
      let dropped1 = Cep.Detector.dropped_capacity t.detector in
      if dropped1 > dropped0 then
        Obs.Log.emit Warn "detector.evict"
          [ ("count", Num (dropped1 - dropped0)); ("total", Num dropped1) ];
      let live = Cep.Detector.partial_count t.detector in
      (* Log the pressure edge, not the steady state: once above 80% of
         capacity warn once, and re-arm only after falling below half. *)
      if live * 5 >= t.max_partials * 4 then begin
        if not (Atomic.exchange t.pressured true) then
          Obs.Log.emit Warn "detector.pressure"
            [ ("live", Num live); ("max_partials", Num t.max_partials) ]
      end
      else if live * 2 < t.max_partials then Atomic.set t.pressured false;
      Ok matches

let ingest_line t ~lineno line =
  match Ingest.parse_line ~lineno line with
  | Ok None -> Ok []
  | Error e ->
      Obs.incr ingest_errors_c;
      Obs.Log.emit Warn "ingest.error"
        [ ("line", Num e.line); ("reason", Str e.reason) ];
      Error e.reason
  | Ok (Some inst) -> feed t inst

let metrics_body t =
  Obs.with_span ~hist_buckets:scrape_buckets "serve.scrape" (fun () ->
      Obs.Runtime.refresh ();
      Report.Prom_text.render ~help:t.help (Obs.snapshot ()))

let ingest_body t body =
  let out = Buffer.create 256 in
  let jsonl json =
    Buffer.add_string out (Report.Json.to_string json);
    Buffer.add_char out '\n'
  in
  List.iter
    (fun line ->
      (* Line numbers keep counting across requests so default tags stay
         unique over the life of the stream. *)
      let lineno = Atomic.fetch_and_add t.next_line 1 in
      match ingest_line t ~lineno line with
      | Ok matches -> List.iter (fun m -> jsonl (match_json m)) matches
      | Error reason ->
          jsonl
            (Report.Json.Obj
               [
                 ("type", Report.Json.String "error");
                 ("line", Report.Json.Int lineno);
                 ("reason", Report.Json.String reason);
               ]))
    (String.split_on_char '\n' body);
  Http.response ~content_type:jsonl_content_type (Buffer.contents out)

(* Request targets may carry a query string (Prometheus sends one when a
   scrape config uses [params]) or a fragment; route on the path alone. *)
let route_path target =
  let cut c s =
    match String.index_opt s c with Some i -> String.sub s 0 i | None -> s
  in
  cut '?' (cut '#' target)

let handle t (req : Http.request) =
  Obs.incr requests_c;
  let method_not_allowed =
    Http.response ~status:405 "method not allowed\n"
  in
  let resp =
    (* Dispatch on path first so a known route with the wrong method is a
       405, and only unknown paths answer 404. *)
    match route_path req.path with
    | "/metrics" ->
        if String.equal req.meth "GET" then begin
          Obs.incr scrapes_c;
          Http.response ~content_type:prom_content_type (metrics_body t)
        end
        else method_not_allowed
    | "/health" ->
        if String.equal req.meth "GET" then Http.response "ok\n"
        else method_not_allowed
    | "/ready" ->
        if String.equal req.meth "GET" then
          if Atomic.get t.ready then Http.response "ready\n"
          else Http.response ~status:503 "stopping\n"
        else method_not_allowed
    | "/ingest" ->
        if String.equal req.meth "POST" then
          if t.http_ingest then ingest_body t req.body
          else Http.response ~status:503 "ingest is fed from stdin\n"
        else method_not_allowed
    | _ -> Http.response ~status:404 "not found\n"
  in
  if resp.status >= 400 then begin
    Obs.incr errors_c;
    Obs.Log.emit Warn "serve.error"
      [
        ("method", Str req.meth);
        ("path", Str req.path);
        ("status", Num resp.status);
      ]
  end;
  Obs.Log.emit Debug "serve.request"
    [
      ("method", Str req.meth);
      ("path", Str req.path);
      ("status", Num resp.status);
    ];
  resp
