let requests_c = Obs.counter "serve.requests"
let errors_c = Obs.counter "serve.errors"
let scrapes_c = Obs.counter "serve.scrapes"
let ingest_errors_c = Obs.counter "serve.ingest.errors"

(* Scrape latencies in microseconds: loopback render-and-serialize lands in
   the sub-millisecond decades, with headroom for GC-disturbed outliers. *)
let scrape_buckets = [| 50; 100; 250; 500; 1000; 2500; 5000; 10000; 50000 |]
let prom_content_type = "text/plain; version=0.0.4; charset=utf-8"
let jsonl_content_type = "application/x-ndjson"

type t = {
  pool : Shard.t;
  http_ingest : bool;
  help : string -> string option;
  ready : bool Atomic.t;
  next_line : int Atomic.t;
}

let default_max_partials = 4096
let default_shard_queue = 64

let create ?engine ?horizon ?(max_partials = default_max_partials)
    ?(shards = 1) ?(shard_queue = default_shard_queue) ?(threaded = false)
    ?(http_ingest = true) ?(help = fun _ -> None) query =
  {
    pool =
      Shard.create ?engine ?horizon ~max_partials ~shards
        ~queue_capacity:shard_queue ~threaded query;
    http_ingest;
    help;
    ready = Atomic.make true;
    next_line = Atomic.make 1;
  }

let pool t = t.pool
let shutdown t = Shard.stop t.pool
let log_start ~port = Obs.Log.emit Info "serve.start" [ ("port", Num port) ]

let log_stop t =
  Atomic.set t.ready false;
  Obs.Log.emit Info "serve.stop" []

(* The request id rides along on every verdict object when the call runs
   inside an [Obs.Request] scope (the HTTP path), so client-side logs
   can be joined against server traces; the stdin feed has no request
   and stays unchanged. *)
let request_id_field = function
  | None -> []
  | Some id -> [ ("request_id", Report.Json.String id) ]

let match_json ?request_id ~line (m : Cep.Detector.match_) =
  Report.Json.Obj
    (("type", Report.Json.String "match")
    :: ("line", Report.Json.Int line)
    :: request_id_field request_id
    @ [
        ( "tags",
          Report.Json.Obj
            (List.map (fun (e, tag) -> (e, Report.Json.String tag)) m.tags) );
        ( "timestamps",
          Report.Json.Obj
            (List.map
               (fun (e, ts) -> (e, Report.Json.Int ts))
               (Events.Tuple.bindings m.tuple)) );
      ])

let overload_reason = "overloaded: shard queue full"

let parse_error ~lineno reason =
  Obs.incr ingest_errors_c;
  Obs.Log.emit Warn "ingest.error"
    [ ("line", Num lineno); ("reason", Str reason) ]

let ingest_line t ~lineno line =
  match Ingest.parse_line ~lineno line with
  | Ok None -> Ok []
  | Error e ->
      parse_error ~lineno:e.line e.reason;
      Error e.reason
  | Ok (Some { Ingest.instance; key }) -> (
      match Shard.submit t.pool [| (key, instance) |] with
      | Shard.Shed -> Error overload_reason
      | Shard.Processed results -> results.(0))

(* One POST /ingest body: reserve a block of line numbers (numbering keeps
   counting across requests so default tags stay unique), parse every
   line, submit the whole batch of parsed instances to the shard pool in
   one call, and reassemble the JSONL verdicts in input order — the same
   client contract as the sequential detector. A shed batch answers 429
   without having applied anything, so the client may retry it wholesale. *)
let ingest_body t body =
  let request_id = Obs.Request.current_id () in
  let lines = Array.of_seq (List.to_seq (String.split_on_char '\n' body)) in
  let n = Array.length lines in
  let base = Atomic.fetch_and_add t.next_line n in
  (* per line: nothing to feed (blank/header), a parse error, or the
     index of its instance in the submitted batch *)
  let slots = Array.make n `Skip in
  let batch = ref [] in
  let batched = ref 0 in
  Obs.Trace.with_span "serve.ingest.parse" (fun () ->
      for i = 0 to n - 1 do
        match Ingest.parse_line ~lineno:(base + i) lines.(i) with
        | Ok None -> ()
        | Error e ->
            parse_error ~lineno:e.line e.reason;
            slots.(i) <- `Bad e.reason
        | Ok (Some { Ingest.instance; key }) ->
            (* shard visibility: the access log and /debug/slow carry
               the shard index every batch line routes to *)
            Obs.Request.note_shard (Shard.shard_of_key t.pool key);
            slots.(i) <- `Inst !batched;
            incr batched;
            batch := (key, instance) :: !batch
      done);
  let batch = Array.of_seq (List.to_seq (List.rev !batch)) in
  match
    (* the shard queue-wait and service spans open inside [submit]'s
       jobs, children of this span via the captured context *)
    Obs.Trace.with_span "serve.ingest.submit" (fun () ->
        Shard.submit t.pool batch)
  with
  | Shard.Shed ->
      (* nothing was applied; give the line numbers back would race other
         batches, so the block stays consumed — tags remain unique *)
      Http.response ~status:429
        ~headers:[ ("Retry-After", "1") ]
        ~content_type:"application/json"
        (Report.Json.to_string
           (Report.Json.Obj
              (("type", Report.Json.String "error")
              :: ("reason", Report.Json.String overload_reason)
              :: request_id_field request_id))
        ^ "\n")
  | Shard.Processed results ->
      Obs.Trace.with_span "serve.ingest.reassemble" (fun () ->
          let out = Buffer.create 256 in
          let jsonl json =
            Buffer.add_string out (Report.Json.to_string json);
            Buffer.add_char out '\n'
          in
          Array.iteri
            (fun i slot ->
              let lineno = base + i in
              let error reason =
                jsonl
                  (Report.Json.Obj
                     (("type", Report.Json.String "error")
                     :: ("line", Report.Json.Int lineno)
                     :: request_id_field request_id
                     @ [ ("reason", Report.Json.String reason) ]))
              in
              match slot with
              | `Skip -> ()
              | `Bad reason -> error reason
              | `Inst j -> (
                  match results.(j) with
                  | Ok matches ->
                      List.iter
                        (fun m -> jsonl (match_json ?request_id ~line:lineno m))
                        matches
                  | Error reason -> error reason))
            slots;
          Http.response ~content_type:jsonl_content_type (Buffer.contents out))

let metrics_body t =
  Obs.with_span ~hist_buckets:scrape_buckets "serve.scrape" (fun () ->
      Obs.Runtime.refresh ();
      Report.Prom_text.render ~help:t.help (Obs.snapshot ()))

(* Request targets may carry a query string (Prometheus sends one when a
   scrape config uses [params]) or a fragment; route on the path alone. *)
let route_path target =
  let cut c s =
    match String.index_opt s c with Some i -> String.sub s 0 i | None -> s
  in
  cut '?' (cut '#' target)

(* First value of [name] in the target's query string, if any. Enough of
   a parser for the single [?format=] knob; no %-decoding. *)
let query_param target name =
  match String.index_opt target '?' with
  | None -> None
  | Some i ->
      let q = String.sub target (i + 1) (String.length target - i - 1) in
      let q = match String.index_opt q '#' with
        | Some j -> String.sub q 0 j
        | None -> q
      in
      List.find_map
        (fun pair ->
          match String.index_opt pair '=' with
          | Some k when String.sub pair 0 k = name ->
              Some (String.sub pair (k + 1) (String.length pair - k - 1))
          | _ -> None)
        (String.split_on_char '&' q)

(* GET /debug/slow: the tail-capture ring, newest first, capped by
   [?limit=N]. The default payload is the span-tree JSON summary;
   [?format=jsonl|chrome|folded] re-exports the raw captured events
   through the existing trace renderers instead. *)
let slow_body target =
  let render infos =
    match query_param target "format" with
    | None ->
        Http.response ~content_type:"application/json"
          (Report.Trace_json.slow_json infos)
    | Some name -> (
        match Report.Trace_json.format_of_string name with
        | None ->
            Http.response ~status:400 ("unknown format: " ^ name ^ "\n")
        | Some fmt ->
            (* oldest first, so spans replay in the order they happened *)
            let events =
              List.concat_map
                (fun (i : Obs.Request.info) -> i.r_events)
                (List.rev infos)
            in
            let content_type =
              match fmt with
              | Report.Trace_json.Jsonl -> jsonl_content_type
              | Report.Trace_json.Chrome -> "application/json"
              | Report.Trace_json.Folded -> "text/plain; charset=utf-8"
            in
            Http.response ~content_type (Report.Trace_json.render fmt events))
  in
  let infos = Obs.Request.retained () in
  match query_param target "limit" with
  | None -> render infos
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 ->
          (* newest first, so the cap keeps the most recent captures *)
          let rec take n = function
            | x :: tl when n > 0 -> x :: take (n - 1) tl
            | _ -> []
          in
          render (take n infos)
      | Some _ | None -> Http.response ~status:400 ("bad limit: " ^ s ^ "\n"))

(* GET /debug/gc: per-domain pause summaries from the runtime-events
   decoder — counts, split by class, max pause, ring-drop count and the
   ring of recent pauses (wall-clock ns, so entries line up with
   /debug/slow span timestamps). A drain runs first so the payload is
   point-in-time consistent with a /metrics scrape. *)
let gc_body () =
  ignore (Obs.Rt_events.poll_now ());
  let pause (p : Obs.Rt_events.pause) =
    Report.Json.Obj
      [
        ( "class",
          Report.Json.String (Obs.Rt_events.pause_class_name p.p_class) );
        ("start_ns", Report.Json.Int p.p_start_ns);
        ("end_ns", Report.Json.Int p.p_end_ns);
        ("duration_us", Report.Json.Int ((p.p_end_ns - p.p_start_ns) / 1000));
      ]
  in
  let dom (d : Obs.Rt_events.dom_summary) =
    Report.Json.Obj
      [
        ("dom", Report.Json.Int d.d_dom);
        ("pauses", Report.Json.Int d.d_pauses);
        ("minor", Report.Json.Int d.d_minor);
        ("major", Report.Json.Int d.d_major);
        ("compact", Report.Json.Int d.d_compact);
        ("max_pause_us", Report.Json.Int d.d_max_pause_us);
        ("dropped", Report.Json.Int d.d_dropped);
        ("recent", Report.Json.List (List.map pause d.d_recent));
      ]
  in
  Report.Json.to_string
    (Report.Json.Obj
       [
         ("running", Report.Json.Bool (Obs.Rt_events.running ()));
         ( "domains",
           Report.Json.List (List.map dom (Obs.Rt_events.summaries ())) );
       ])
  ^ "\n"

(* 503 payload naming the saturated shard queues, so a load balancer (or
   an operator) can see which partitions are behind. *)
let backpressure_body t saturated =
  Report.Json.to_string
    (Report.Json.Obj
       [
         ("ready", Report.Json.Bool false);
         ("reason", Report.Json.String "backpressure");
         ( "saturated_shards",
           Report.Json.List
             (List.map
                (fun (k, queued) ->
                  Report.Json.Obj
                    [
                      ("shard", Report.Json.Int k);
                      ("queued", Report.Json.Int queued);
                      ("capacity", Report.Json.Int (Shard.queue_capacity t.pool));
                    ])
                saturated) );
       ])
  ^ "\n"

let handle t (req : Http.request) =
  Obs.incr requests_c;
  let method_not_allowed =
    Http.response ~status:405 "method not allowed\n"
  in
  let resp =
    (* Dispatch on path first so a known route with the wrong method is a
       405, and only unknown paths answer 404. *)
    match route_path req.path with
    | "/metrics" ->
        if String.equal req.meth "GET" then begin
          Obs.incr scrapes_c;
          Http.response ~content_type:prom_content_type (metrics_body t)
        end
        else method_not_allowed
    | "/health" ->
        if String.equal req.meth "GET" then Http.response "ok\n"
        else method_not_allowed
    | "/ready" ->
        if String.equal req.meth "GET" then
          if not (Atomic.get t.ready) then
            Http.response ~status:503 "stopping\n"
          else begin
            (* Reflect back-pressure: while any shard queue is full an
               admission would shed, so tell the balancer to back off
               before it costs a 429. *)
            match Shard.saturation t.pool with
            | [] -> Http.response "ready\n"
            | saturated ->
                Http.response ~status:503 ~content_type:"application/json"
                  (backpressure_body t saturated)
          end
        else method_not_allowed
    | "/debug/slow" ->
        if String.equal req.meth "GET" then slow_body req.path
        else method_not_allowed
    | "/debug/slow/clear" ->
        if String.equal req.meth "POST" then begin
          Obs.Request.clear_retained ();
          Http.response ~content_type:"application/json"
            "{\"cleared\":true}\n"
        end
        else method_not_allowed
    | "/debug/gc" ->
        if String.equal req.meth "GET" then
          Http.response ~content_type:"application/json" (gc_body ())
        else method_not_allowed
    | "/ingest" ->
        if String.equal req.meth "POST" then
          if t.http_ingest then ingest_body t req.body
          else Http.response ~status:503 "ingest is fed from stdin\n"
        else method_not_allowed
    | _ -> Http.response ~status:404 "not found\n"
  in
  if resp.status >= 400 then begin
    Obs.incr errors_c;
    Obs.Log.emit Warn "serve.error"
      [
        ("method", Str req.meth);
        ("path", Str req.path);
        ("status", Num resp.status);
      ]
  end;
  Obs.Log.emit Debug "serve.request"
    [
      ("method", Str req.meth);
      ("path", Str req.path);
      ("status", Num resp.status);
    ];
  resp
