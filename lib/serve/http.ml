(* Minimal dependency-free HTTP/1.1 responder over Unix sockets, in two
   serving modes. [serve] is the original single-threaded accept loop:
   sequential handling serializes every route through one thread, so the
   handler may touch non-thread-safe state without locks. [serve_pool]
   adds a Domain pool — the calling thread accepts and hands connections
   to N worker domains over a bounded queue — for handlers that are safe
   to run concurrently (the sharded service). Both modes speak keep-alive:
   a client sending [Connection: keep-alive] reuses its connection for up
   to [keepalive_limit] requests, each under the same I/O deadline. *)

let keepalive_c = Obs.counter "serve.keepalive.reuses"

(* Microsecond bucket bounds for the request-stage latency histograms
   ([*.duration_us]): 50us resolution at the fast end, 1s at the tail. *)
let latency_buckets =
  [|
    50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000; 50000; 100000; 250000;
    1000000;
  |]

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

(* A peer that resets the connection mid-write must surface as a
   catchable EPIPE from [Unix.write], not as SIGPIPE — the signal's
   default disposition would kill the whole process. Forced before any
   socket I/O ([listen] and the clients). An Atomic, not a Lazy: lazy
   forcing is not safe under domain races, and clients run on many. *)
let sigpipe_ignored = Atomic.make false

let ignore_sigpipe () =
  if not (Atomic.exchange sigpipe_ignored true) then
    match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | () -> ()
    | exception Invalid_argument _ -> (* no SIGPIPE on this platform *) ()

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    ?(headers = []) body =
  { status; content_type; headers; body }

(* Bounds chosen for a loopback telemetry port: enough for any scrape or
   reasonable ingest batch, small enough that a misdirected upload cannot
   balloon the process. *)
let max_head_bytes = 64 * 1024
let max_body_bytes = 16 * 1024 * 1024

(* Keep-alive bounds: a connection is recycled at most this many times by
   default, so one chatty client cannot monopolize a worker forever. *)
let default_keepalive_limit = 100

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some i
    else go (i + 1)
  in
  if m = 0 then Some from else go from

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_response ?(keep_alive = false) fd (r : response) =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       %sConnection: %s\r\n\
       \r\n"
      r.status (reason_of r.status) r.content_type (String.length r.body)
      extra
      (if keep_alive then "keep-alive" else "close")
  in
  write_all fd (head ^ r.body)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Error "empty request"
  | request_line :: header_lines -> (
      let strip_cr s =
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
      in
      match
        String.split_on_char ' ' (strip_cr request_line)
        |> List.filter (fun t -> not (String.equal t ""))
      with
      | meth :: path :: _ ->
          let headers =
            List.filter_map
              (fun line ->
                let line = strip_cr line in
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                    Some
                      ( String.lowercase_ascii
                          (String.trim (String.sub line 0 i)),
                        String.trim
                          (String.sub line (i + 1)
                             (String.length line - i - 1)) ))
              header_lines
          in
          Ok (meth, path, headers)
      | _ -> Error "malformed request line")

let header_value headers name =
  List.find_map
    (fun (n, v) -> if String.equal n name then Some v else None)
    headers

exception Read_timed_out

type received =
  | Req of request
  | Closed  (* clean EOF between requests: nothing buffered, peer gone *)
  | Fail of int * string  (* status to answer before closing *)

(* Read one full request from [fd]. [pending] carries bytes read past the
   previous request on a kept-alive connection (a pipelining client's
   next request must not be dropped), and is left holding any overrun on
   return. Failures carry the status to answer with (400 for malformed
   input, 408 for a read timeout, 413 for oversized bodies). A timeout
   relies on the caller having set SO_RCVTIMEO on [fd]; without it reads
   block indefinitely. *)
let recv_request fd pending =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf !pending;
  pending := "";
  let refill () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | n ->
        if n > 0 then Buffer.add_subbytes buf chunk 0 n;
        n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise Read_timed_out
  in
  let rec head_end () =
    match find_sub (Buffer.contents buf) "\r\n\r\n" 0 with
    | Some i -> Ok (i + 4)
    | None ->
        if Buffer.length buf > max_head_bytes then
          Error (400, "request headers too large")
        else if refill () = 0 then
          if Buffer.length buf = 0 then Error (0, "") (* clean close *)
          else Error (400, "truncated request")
        else head_end ()
  in
  let finish status msg =
    if status = 0 then Closed else Fail (status, msg)
  in
  try
    match head_end () with
    | Error (status, msg) -> finish status msg
    | Ok body_start -> (
        match
          parse_head (String.sub (Buffer.contents buf) 0 (body_start - 4))
        with
        | Error msg -> Fail (400, msg)
        | Ok (meth, path, headers) -> (
            let content_length =
              match header_value headers "content-length" with
              | None -> Ok 0
              | Some v -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> Ok n
                  | _ -> Error (400, "bad content-length"))
            in
            match content_length with
            | Error (status, msg) -> Fail (status, msg)
            | Ok len when len > max_body_bytes -> Fail (413, "body too large")
            | Ok len ->
                let rec fill_body () =
                  if Buffer.length buf >= body_start + len then begin
                    let all = Buffer.contents buf in
                    (* stash the overrun for the next request on this
                       connection *)
                    pending :=
                      String.sub all (body_start + len)
                        (String.length all - body_start - len);
                    Req
                      {
                        meth;
                        path;
                        headers;
                        body = String.sub all body_start len;
                      }
                  end
                  else if refill () = 0 then Fail (400, "truncated body")
                  else fill_body ()
                in
                fill_body ()))
  with Read_timed_out -> Fail (408, "request read timed out")

(* Live-connection registry: [stop] shuts down the read side of every
   connection currently being served, so a worker blocked reading an idle
   kept-alive socket wakes with EOF instead of wedging shutdown until its
   I/O deadline. All access takes [cm]. *)
type conns = {
  cm : Mutex.t;
  fds : (Unix.file_descr, unit) Hashtbl.t;
}

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  conns : conns;
}

let listen ?(backlog = 128) ~port () =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  {
    sock;
    port;
    stopping = Atomic.make false;
    conns = { cm = Mutex.create (); fds = Hashtbl.create 16 };
  }

let port t = t.port
let stopping t = Atomic.get t.stopping

let track_conn t fd =
  Mutex.lock t.conns.cm;
  Hashtbl.replace t.conns.fds fd ();
  (* stop may have run between accept and here: shut the read side now so
     this connection cannot outlive shutdown by its full deadline *)
  if Atomic.get t.stopping then begin
    (* check: blocking - shutdown(2) never blocks; running under cm keeps a concurrently closed-and-recycled fd out *)
    match Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  end;
  Mutex.unlock t.conns.cm

let untrack_conn t fd =
  Mutex.lock t.conns.cm;
  Hashtbl.remove t.conns.fds fd;
  Mutex.unlock t.conns.cm

(* Per-connection I/O deadline. A client that connects and then sends
   nothing would otherwise pin a worker (and, in sequential mode, wedge
   every route and [stop], whose wake-up poke only unblocks [accept], not
   a read stuck inside a connection). *)
let default_io_timeout = 10.0

let wants_keep_alive (req : request) =
  match header_value req.headers "connection" with
  | Some v -> String.equal (String.lowercase_ascii v) "keep-alive"
  | None -> false

(* The response-write leg, timed into the request scope and the
   [serve.request.write] span even when the peer resets mid-write (the
   EPIPE propagates after the finally). *)
let write_timed sc ~keep_alive fd (resp : response) =
  Obs.Request.set_status sc resp.status;
  Obs.Request.set_bytes_out sc (String.length resp.body);
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let ns = now_ns () - t0 in
      Obs.Request.set_write sc ns;
      Obs.observe_span ~hist_buckets:latency_buckets "serve.request.write" ~ns)
    (fun () ->
      Obs.Trace.with_span "serve.request.write" (fun () ->
          write_response ~keep_alive fd resp))

(* One connection, possibly many requests: honor [Connection: keep-alive]
   up to [keepalive_limit] requests, each under the same I/O deadline.
   The response echoes the decision in its own Connection header, and a
   kept-alive turn counts into [serve.keepalive.reuses]. Closing is the
   default — our own one-shot client still drains to EOF.

   Every turn runs inside one [Obs.Request] scope: the request id is
   minted before the read, echoed in [X-Request-Id], and the turn's
   stages land in the scope as queue-wait (real for the first turn of a
   pooled connection, zero for keep-alive reuses — the connection is
   already on its worker), read, service (the handler), and write. A
   turn that ends in a clean keep-alive EOF never was a request: its
   scope is abandoned, producing no access-log line. *)
let handle_conn ?(queue_wait_ns = 0) ~io_timeout ~keepalive_limit t handler fd
    =
  Fun.protect
    ~finally:(fun () ->
      untrack_conn t fd;
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      track_conn t fd;
      if io_timeout > 0. then begin
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout
      end;
      let pending = ref "" in
      let rec turn served =
        let wait_ns = if served = 0 then queue_wait_ns else 0 in
        let keep_going =
          Obs.Request.with_scope (fun sc ->
              let t0 = now_ns () in
              let finish_wait () =
                Obs.Request.set_queue_wait sc wait_ns;
                Obs.observe_span ~hist_buckets:latency_buckets
                  "serve.request.queue_wait" ~ns:wait_ns;
                Obs.Trace.span_interval "serve.request.queue_wait"
                  ~t0_ns:(t0 - wait_ns) ~t1_ns:t0
              in
              let received =
                Obs.Trace.with_span "serve.request.read" (fun () ->
                    recv_request fd pending)
              in
              Obs.Request.set_read sc (now_ns () - t0);
              match received with
              | Closed ->
                  Obs.Request.abandon sc;
                  false
              | Fail (status, msg) ->
                  finish_wait ();
                  let resp =
                    response ~status
                      ~headers:[ ("X-Request-Id", Obs.Request.id sc) ]
                      (msg ^ "\n")
                  in
                  write_timed sc ~keep_alive:false fd resp;
                  false
              | Req req ->
                  finish_wait ();
                  (* a request after the first means the connection was
                     actually reused, not merely left open *)
                  if served > 0 then Obs.incr keepalive_c;
                  Obs.Request.set_route sc ~meth:req.meth ~path:req.path;
                  Obs.Request.set_bytes_in sc (String.length req.body);
                  let t_svc = now_ns () in
                  let resp = handler req in
                  Obs.Request.set_service sc (now_ns () - t_svc);
                  let keep_alive =
                    wants_keep_alive req
                    && served + 1 < keepalive_limit
                    && not (Atomic.get t.stopping)
                  in
                  Obs.Request.set_keep_alive sc keep_alive;
                  let resp =
                    {
                      resp with
                      headers =
                        ("X-Request-Id", Obs.Request.id sc) :: resp.headers;
                    }
                  in
                  write_timed sc ~keep_alive fd resp;
                  keep_alive)
        in
        if keep_going then turn (served + 1)
      in
      turn 0)

let swallow_conn_error handler fd =
  (* A client that vanished mid-request (reset, timeout) must not take
     the server down; [handle_conn] has already closed the socket. *)
  match handler fd with () -> () | exception Unix.Unix_error _ -> ()

let serve ?(io_timeout = default_io_timeout)
    ?(keepalive_limit = default_keepalive_limit) t handler =
  Fun.protect
    ~finally:(fun () ->
      match Unix.close t.sock with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      while not (Atomic.get t.stopping) do
        match Unix.accept t.sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            if Atomic.get t.stopping then Unix.close fd
            else
              swallow_conn_error
                (handle_conn ~io_timeout ~keepalive_limit t handler)
                fd
      done)

(* Domain-pool mode: the calling thread accepts and enqueues; [workers]
   domains drain the queue and run the same per-connection loop. The
   queue is bounded at [2 * workers] — when every worker is busy and the
   queue is full, the acceptor blocks, new connections pile up in the
   kernel backlog, and past that the kernel refuses them: back-pressure
   reaches clients as connect latency rather than unbounded buffering.
   All pool state is function-local (queue and conditions under one
   mutex); the shared [t] is atomics plus the mutex-guarded registry. *)
let serve_pool ?(io_timeout = default_io_timeout)
    ?(keepalive_limit = default_keepalive_limit) ~workers t handler =
  if workers < 1 then invalid_arg "Http.serve_pool: workers must be >= 1";
  let qm = Mutex.create () in
  let not_empty = Condition.create () in
  let not_full = Condition.create () in
  let queue = Queue.create () in
  let capacity = 2 * workers in
  let worker () =
    let rec next () =
      Mutex.lock qm;
      while Queue.is_empty queue && not (Atomic.get t.stopping) do
        Condition.wait not_empty qm
      done;
      match Queue.take_opt queue with
      | Some (fd, enqueued_ns) ->
          Condition.signal not_full;
          Mutex.unlock qm;
          let queue_wait_ns = now_ns () - enqueued_ns in
          swallow_conn_error
            (handle_conn ~queue_wait_ns ~io_timeout ~keepalive_limit t handler)
            fd;
          next ()
      | None -> Mutex.unlock qm (* stopping and drained *)
    in
    next ()
  in
  let domains = Array.init workers (fun _ -> Domain.spawn worker) in
  Fun.protect
    ~finally:(fun () ->
      (* wake every worker parked on the empty queue, then drain: workers
         exit once the queue is empty and the stop flag is up *)
      Mutex.lock qm;
      Condition.broadcast not_empty;
      Mutex.unlock qm;
      Array.iter Domain.join domains;
      match Unix.close t.sock with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      while not (Atomic.get t.stopping) do
        match Unix.accept t.sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            if Atomic.get t.stopping then Unix.close fd
            else begin
              Mutex.lock qm;
              while
                Queue.length queue >= capacity && not (Atomic.get t.stopping)
              do
                Condition.wait not_full qm
              done;
              if Atomic.get t.stopping then begin
                Mutex.unlock qm;
                Unix.close fd
              end
              else begin
                (* stamp the hand-off so the worker can attribute the
                   connection's wait in this queue to the first request *)
                Queue.add (fd, now_ns ()) queue;
                Condition.signal not_empty;
                Mutex.unlock qm
              end
            end
      done)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake reads blocked inside in-flight (kept-alive) connections: shut
       their receive side so the next read sees EOF while the response
       path stays writable. *)
    Mutex.lock t.conns.cm;
    Hashtbl.iter
      (fun fd () ->
        (* check: blocking - shutdown(2) never blocks; iterating under cm keeps untrack_conn's close/recycle out *)
        match Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      t.conns.fds;
    Mutex.unlock t.conns.cm;
    (* The accept loop may be blocked in [accept]; poke it awake with a
       throwaway loopback connection. *)
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | s -> (
        match
          Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
        with
        | () | (exception Unix.Unix_error _) -> (
            match Unix.close s with
            | () -> ()
            | exception Unix.Unix_error _ -> ()))
  end

(* --- tiny loopback clients, used by tests and the bench loops --- *)

let parse_response raw =
  match find_sub raw "\r\n\r\n" 0 with
  | None -> Error "malformed response: no header terminator"
  | Some i -> (
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      let status_line =
        match find_sub raw "\r\n" 0 with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match
        String.split_on_char ' ' status_line
        |> List.filter (fun t -> not (String.equal t ""))
      with
      | _http :: code :: _ -> (
          match int_of_string_opt code with
          | Some status -> Ok (status, body)
          | None -> Error "malformed response: bad status code")
      | _ -> Error "malformed response: bad status line")

(* Like [parse_response] but keeps the response headers (lowercased
   names), for callers that need e.g. [x-request-id]. *)
let parse_response_full raw =
  match find_sub raw "\r\n\r\n" 0 with
  | None -> Error "malformed response: no header terminator"
  | Some i -> (
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      (* [parse_head] reads the status line as "method path": for a
         response that yields the HTTP version and the status code *)
      match parse_head (String.sub raw 0 i) with
      | Error e -> Error e
      | Ok (_http, code, headers) -> (
          match int_of_string_opt code with
          | Some status -> Ok (status, headers, body)
          | None -> Error "malformed response: bad status code"))

let raw_request ?(body = "") ~port ~meth path =
  ignore_sigpipe ();
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      match Unix.close s with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all s
        (Printf.sprintf
           "%s %s HTTP/1.1\r\n\
            Host: localhost\r\n\
            Content-Length: %d\r\n\
            Connection: close\r\n\
            \r\n\
            %s"
           meth path (String.length body) body);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read s chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let request ?body ~port ~meth path =
  parse_response (raw_request ?body ~port ~meth path)

let request_full ?body ~port ~meth path =
  parse_response_full (raw_request ?body ~port ~meth path)

let get ~port path = request ~port ~meth:"GET" path
let post ~port path body = request ~body ~port ~meth:"POST" path

(* A persistent (keep-alive) client: one TCP connection, many requests,
   responses framed by Content-Length instead of EOF. This is the client
   side of the keep-alive satellite — the bench uses it to measure the
   per-request connection setup the feature removes. *)
module Client = struct
  type conn = { fd : Unix.file_descr; pending : Buffer.t }

  let connect ~port =
    ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
    | () -> ()
    | exception e ->
        (match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error _ -> ());
        raise e);
    { fd; pending = Buffer.create 1024 }

  let close c =
    match Unix.close c.fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ()

  let read_until c stop_at =
    (* grow [pending] until [stop_at pending] returns a split point *)
    let chunk = Bytes.create 4096 in
    let rec go () =
      match stop_at (Buffer.contents c.pending) with
      | Some i -> Ok i
      | None ->
          let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
          if n = 0 then Error "connection closed mid-response"
          else begin
            Buffer.add_subbytes c.pending chunk 0 n;
            go ()
          end
    in
    go ()

  let take c n =
    let all = Buffer.contents c.pending in
    let s = String.sub all 0 n in
    Buffer.clear c.pending;
    Buffer.add_substring c.pending all n (String.length all - n);
    s

  let request_exn ?(body = "") c ~meth path =
    write_all c.fd
      (Printf.sprintf
         "%s %s HTTP/1.1\r\n\
          Host: localhost\r\n\
          Content-Length: %d\r\n\
          Connection: keep-alive\r\n\
          \r\n\
          %s"
         meth path (String.length body) body);
    match read_until c (fun s -> find_sub s "\r\n\r\n" 0) with
    | Error _ as e -> e
    | Ok head_len -> (
        let head = take c (head_len + 4) in
        let content_length =
          match parse_head head with
          | Error _ -> None
          | Ok (_, _, headers) ->
              Option.bind (header_value headers "content-length")
                int_of_string_opt
        in
        match content_length with
        | None -> Error "malformed response: no content-length"
        | Some len -> (
            match
              read_until c (fun s ->
                  if String.length s >= len then Some len else None)
            with
            | Error _ as e -> e
            | Ok _ -> (
                let body = take c len in
                match parse_response (head ^ body) with
                | Ok (status, _) -> Ok (status, body)
                | Error _ as e -> e)))

  (* A server that closed the connection (keep-alive cap, shutdown)
     surfaces as EPIPE/ECONNRESET here; the mli promises [Error], not an
     exception, so the caller can reconnect. *)
  let request ?(body = "") c ~meth path =
    try request_exn ~body c ~meth path
    with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

  let get c path = request c ~meth:"GET" path
  let post c path body = request ~body c ~meth:"POST" path
end
