(* Minimal dependency-free HTTP/1.1 responder over Unix sockets: a single
   sequential accept loop, one request per connection (Connection: close).
   Sequential handling is a feature here, not a limitation — it serializes
   every route through one thread, so the handler may touch non-thread-safe
   state (the detector) without locks. Scrape traffic is tiny and ingest
   batches are bounded, so head-of-line blocking is acceptable. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; content_type : string; body : string }

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

(* A peer that resets the connection mid-write must surface as a
   catchable EPIPE from [Unix.write], not as SIGPIPE — the signal's
   default disposition would kill the whole process. Forced before any
   socket I/O ([listen] and [request]). *)
let ignore_sigpipe =
  lazy
    (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | () -> ()
    | exception Invalid_argument _ -> (* no SIGPIPE on this platform *) ())

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    body =
  { status; content_type; body }

(* Bounds chosen for a loopback telemetry port: enough for any scrape or
   reasonable ingest batch, small enough that a misdirected upload cannot
   balloon the process. *)
let max_head_bytes = 64 * 1024
let max_body_bytes = 16 * 1024 * 1024

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some i
    else go (i + 1)
  in
  if m = 0 then Some from else go from

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_response fd (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      r.status (reason_of r.status) r.content_type (String.length r.body)
  in
  write_all fd (head ^ r.body)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Error "empty request"
  | request_line :: header_lines -> (
      let strip_cr s =
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
      in
      match
        String.split_on_char ' ' (strip_cr request_line)
        |> List.filter (fun t -> not (String.equal t ""))
      with
      | meth :: path :: _ ->
          let headers =
            List.filter_map
              (fun line ->
                let line = strip_cr line in
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                    Some
                      ( String.lowercase_ascii
                          (String.trim (String.sub line 0 i)),
                        String.trim
                          (String.sub line (i + 1)
                             (String.length line - i - 1)) ))
              header_lines
          in
          Ok (meth, path, headers)
      | _ -> Error "malformed request line")

let header_value headers name =
  List.find_map
    (fun (n, v) -> if String.equal n name then Some v else None)
    headers

exception Read_timed_out

(* Read one full request from [fd]. Errors carry the status to answer
   with (400 for malformed input, 408 for a read timeout, 413 for
   oversized bodies). A timeout relies on the caller having set
   SO_RCVTIMEO on [fd]; without it reads block indefinitely. *)
let recv_request fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 1024 in
  let refill () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | n ->
        if n > 0 then Buffer.add_subbytes buf chunk 0 n;
        n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise Read_timed_out
  in
  let rec head_end () =
    match find_sub (Buffer.contents buf) "\r\n\r\n" 0 with
    | Some i -> Ok (i + 4)
    | None ->
        if Buffer.length buf > max_head_bytes then
          Error (400, "request headers too large")
        else if refill () = 0 then Error (400, "truncated request")
        else head_end ()
  in
  try
    match head_end () with
    | Error _ as e -> e
    | Ok body_start -> (
        match
          parse_head (String.sub (Buffer.contents buf) 0 (body_start - 4))
        with
        | Error msg -> Error (400, msg)
        | Ok (meth, path, headers) -> (
            let content_length =
              match header_value headers "content-length" with
              | None -> Ok 0
              | Some v -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> Ok n
                  | _ -> Error (400, "bad content-length"))
            in
            match content_length with
            | Error _ as e -> e
            | Ok len when len > max_body_bytes -> Error (413, "body too large")
            | Ok len ->
                let rec fill_body () =
                  if Buffer.length buf >= body_start + len then
                    Ok
                      {
                        meth;
                        path;
                        headers;
                        body = String.sub (Buffer.contents buf) body_start len;
                      }
                  else if refill () = 0 then Error (400, "truncated body")
                  else fill_body ()
                in
                fill_body ()))
  with Read_timed_out -> Error (408, "request read timed out")

type t = { sock : Unix.file_descr; port : int; stopping : bool Atomic.t }

let listen ?(backlog = 16) ~port () =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; port; stopping = Atomic.make false }

let port t = t.port
let stopping t = Atomic.get t.stopping

(* Per-connection I/O deadline. The accept loop is sequential, so a
   client that connects and then sends nothing would otherwise wedge
   every route (and [stop], whose wake-up poke only unblocks [accept],
   not a read stuck inside a connection). *)
let default_io_timeout = 10.0

let serve ?(io_timeout = default_io_timeout) t handler =
  let handle_conn fd =
    Fun.protect
      ~finally:(fun () ->
        match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      (fun () ->
        if io_timeout > 0. then begin
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout
        end;
        match recv_request fd with
        | Error (status, msg) ->
            write_response fd (response ~status (msg ^ "\n"))
        | Ok req -> write_response fd (handler req))
  in
  Fun.protect
    ~finally:(fun () ->
      match Unix.close t.sock with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      while not (Atomic.get t.stopping) do
        match Unix.accept t.sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            if Atomic.get t.stopping then Unix.close fd
            else (
              match handle_conn fd with
              | () -> ()
              | exception Unix.Unix_error _ ->
                  (* A client that vanished mid-request (reset, timeout)
                     must not take the server down. *)
                  ())
      done)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* The accept loop may be blocked in [accept]; poke it awake with a
       throwaway loopback connection. *)
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | s -> (
        match
          Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
        with
        | () | (exception Unix.Unix_error _) -> (
            match Unix.close s with
            | () -> ()
            | exception Unix.Unix_error _ -> ()))
  end

(* --- tiny loopback client, used by tests and the bench scrape loop --- *)

let parse_response raw =
  match find_sub raw "\r\n\r\n" 0 with
  | None -> Error "malformed response: no header terminator"
  | Some i -> (
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      let status_line =
        match find_sub raw "\r\n" 0 with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match
        String.split_on_char ' ' status_line
        |> List.filter (fun t -> not (String.equal t ""))
      with
      | _http :: code :: _ -> (
          match int_of_string_opt code with
          | Some status -> Ok (status, body)
          | None -> Error "malformed response: bad status code")
      | _ -> Error "malformed response: bad status line")

let request ?(body = "") ~port ~meth path =
  Lazy.force ignore_sigpipe;
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      match Unix.close s with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all s
        (Printf.sprintf
           "%s %s HTTP/1.1\r\n\
            Host: localhost\r\n\
            Content-Length: %d\r\n\
            Connection: close\r\n\
            \r\n\
            %s"
           meth path (String.length body) body);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read s chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      parse_response (Buffer.contents buf))

let get ~port path = request ~port ~meth:"GET" path
let post ~port path body = request ~body ~port ~meth:"POST" path
