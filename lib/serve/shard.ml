(* Partition-keyed detector shards behind `whynot serve`.

   The pool owns K shards; every partition key hashes to one shard, and
   each shard keeps one detector per key (built from a shared
   Cep.Detector.template, so the query is validated and compiled once, not
   once per key). Events with different keys are separate logical streams
   and never combine into one match — the partitioned-parallel-detection
   model of cloud-native CEP. The keyless stream is the single implicit
   key "" and always lands on shard 0, which keeps a 1-shard pool
   bit-identical to the single sequential detector it replaces.

   Threading: in threaded mode each shard runs a dedicated worker domain
   draining a bounded job queue (a channel in all but name — see
   DESIGN.md for why per-shard queues beat a mutex per shard here).
   [submit] splits a batch by shard, admits it all-or-nothing (so a shed
   batch is never partially applied and can be retried wholesale), blocks
   until every sub-batch is processed, and returns per-event results in
   input order. A full queue sheds the whole batch instead of queueing
   unbounded work — the caller turns that into HTTP 429. In inline mode
   (no worker domains) the caller's domain processes batches
   synchronously and nothing ever sheds; like the pre-shard service, an
   inline pool must then be driven from one domain at a time.

   Every mutable container here is function-local or reached only through
   values created in [create]: shard queues are guarded by the shard
   mutex, key tables are private to the shard's processing domain, and
   batch completion is an atomic countdown. *)

let shed_c = Obs.counter "serve.shed"
let ingest_lines_c = Obs.counter "serve.ingest.lines"
let ingest_errors_c = Obs.counter "serve.ingest.errors"
let matches_c = Obs.counter "serve.matches"

type keystate = {
  det : Cep.Detector.t;
  mutable pressured : bool;
      (* edge-triggered pressure warning state; touched only by the
         domain processing this shard *)
}

type cell = {
  results : (Cep.Detector.match_ list, string) result array;
      (* slot per submitted event; sub-batches write disjoint indices *)
  remaining : int Atomic.t;  (* sub-batches still outstanding *)
  cm : Mutex.t;
  cv : Condition.t;
}

type job = {
  items : (int * string * Cep.Detector.instance) list;
      (* (result slot, key, instance), in input order *)
  cell : cell;
  ctx : Obs.Trace.context;
      (* the submitting request's trace position, so the worker's spans
         join its tree (and capture buffer) *)
  enqueued_ns : int;  (* when the job entered the shard queue *)
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type shard = {
  index : int;
  sm : Mutex.t;
  not_empty : Condition.t;
  jobs : job Queue.t;  (* guarded by [sm] *)
  mutable stop_requested : bool;  (* guarded by [sm] *)
  keys : (string, keystate) Hashtbl.t;
      (* private to the domain processing this shard *)
  depth_g : Obs.gauge;
  events_c : Obs.counter;
  keys_g : Obs.gauge;
}

type t = {
  tpl : Cep.Detector.template;
  max_partials : int;
  capacity : int;
  shards : shard array;
  mutable domains : unit Domain.t array;  (* [||] in inline mode *)
  stopped : bool Atomic.t;
}

type outcome =
  | Processed of (Cep.Detector.match_ list, string) result array
  | Shed

let shard_count t = Array.length t.shards
let queue_capacity t = t.capacity
let threaded t = Array.length t.domains > 0

(* The keyless stream pins to shard 0 (not hash "") so single-detector
   compatibility is by construction, not by accident of the hash. *)
let shard_of_key t key =
  if String.equal key "" then 0
  else Hashtbl.hash key mod Array.length t.shards

(* One event through one key's detector, with the same accounting the
   unsharded service performed: ingest counters, match/evict logging and
   the edge-triggered pressure warning (per key — each key has its own
   partial buffer and its own bound). *)
let feed_keyed t shard ~key (inst : Cep.Detector.instance) =
  let ks =
    match Hashtbl.find_opt shard.keys key with
    | Some ks -> ks
    | None ->
        let ks = { det = Cep.Detector.of_template t.tpl; pressured = false } in
        Hashtbl.add shard.keys key ks;
        Obs.gauge_set shard.keys_g (Hashtbl.length shard.keys);
        ks
  in
  Obs.incr shard.events_c;
  let dropped0 = Cep.Detector.dropped_capacity ks.det in
  match Cep.Detector.feed ks.det inst with
  | exception Invalid_argument reason ->
      Obs.incr ingest_errors_c;
      Obs.Log.emit Warn "ingest.error"
        [
          ("event", Str inst.event);
          ("timestamp", Num inst.timestamp);
          ("reason", Str reason);
        ];
      Error reason
  | matches ->
      Obs.incr ingest_lines_c;
      Obs.add matches_c (List.length matches);
      if Obs.Log.enabled Info then
        List.iter
          (fun (m : Cep.Detector.match_) ->
            Obs.Log.emit Info "detector.match"
              (List.map (fun (e, tag) -> (e, Obs.Log.Str tag)) m.tags))
          matches;
      let dropped1 = Cep.Detector.dropped_capacity ks.det in
      if dropped1 > dropped0 then
        Obs.Log.emit Warn "detector.evict"
          [ ("count", Num (dropped1 - dropped0)); ("total", Num dropped1) ];
      let live = Cep.Detector.partial_count ks.det in
      (* Log the pressure edge, not the steady state: once above 80% of
         capacity warn once, and re-arm only after falling below half. *)
      if live * 5 >= t.max_partials * 4 then begin
        if not ks.pressured then begin
          ks.pressured <- true;
          Obs.Log.emit Warn "detector.pressure"
            [ ("live", Num live); ("max_partials", Num t.max_partials) ]
        end
      end
      else if live * 2 < t.max_partials then ks.pressured <- false;
      Ok matches

let run_job t shard job =
  let t0 = now_ns () in
  let work () =
    (* queue wait ended when this worker dequeued the job *)
    Obs.Trace.span_interval "serve.shard.queue_wait" ~t0_ns:job.enqueued_ns
      ~t1_ns:t0;
    Obs.Trace.with_span "serve.shard.service" (fun () ->
        if Obs.Trace.should_emit () then
          Obs.Trace.emit
            (Mark { label = Printf.sprintf "shard.%d" shard.index });
        List.iter
          (fun (slot, key, inst) ->
            job.cell.results.(slot) <- feed_keyed t shard ~key inst)
          job.items)
  in
  (* Adopt the submitting request's trace context only when it can
     record something — an untraced request costs the worker nothing. *)
  if Obs.Trace.context_active job.ctx then Obs.Trace.with_context job.ctx work
  else work ();
  Obs.observe_span ~hist_buckets:Http.latency_buckets "serve.shard.service"
    ~ns:(now_ns () - t0);
  if Atomic.fetch_and_add job.cell.remaining (-1) = 1 then begin
    Mutex.lock job.cell.cm;
    Condition.broadcast job.cell.cv;
    Mutex.unlock job.cell.cm
  end

(* Worker domain: drain the shard queue until stop is requested AND the
   queue is empty — admitted batches are always completed, so a submitter
   can never be left waiting on a cell across shutdown. *)
let worker t shard =
  let rec next () =
    Mutex.lock shard.sm;
    while Queue.is_empty shard.jobs && not shard.stop_requested do
      Condition.wait shard.not_empty shard.sm
    done;
    match Queue.take_opt shard.jobs with
    | Some job ->
        Obs.gauge_set shard.depth_g (Queue.length shard.jobs);
        Mutex.unlock shard.sm;
        run_job t shard job;
        next ()
    | None -> Mutex.unlock shard.sm (* stopping and drained *)
  in
  next ()

let create ?engine ?horizon ?(max_partials = 4096) ?(shards = 1)
    ?(queue_capacity = 64) ?(threaded = false) patterns =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if queue_capacity < 0 then
    invalid_arg "Shard.create: negative queue capacity";
  let tpl = Cep.Detector.template ?engine ?horizon ~max_partials patterns in
  let mk k =
    let s =
      {
        index = k;
        sm = Mutex.create ();
        not_empty = Condition.create ();
        jobs = Queue.create ();
        stop_requested = false;
        keys = Hashtbl.create 16;
        depth_g = Obs.gauge (Printf.sprintf "serve.shard.%d.queue_depth" k);
        events_c = Obs.counter (Printf.sprintf "serve.shard.%d.events" k);
        keys_g = Obs.gauge (Printf.sprintf "serve.shard.%d.keys" k);
      }
    in
    (* metrics are process-global: a fresh pool starts its gauges clean *)
    Obs.gauge_set s.depth_g 0;
    Obs.gauge_set s.keys_g 0;
    s
  in
  let t =
    {
      tpl;
      max_partials;
      capacity = queue_capacity;
      shards = Array.init shards mk;
      domains = [||];
      stopped = Atomic.make false;
    }
  in
  if threaded then
    t.domains <-
      Array.init shards (fun k -> Domain.spawn (fun () -> worker t t.shards.(k)));
  t

let submit t batch =
  let n = Array.length batch in
  let results = Array.make n (Ok []) in
  if n = 0 then Processed results
  else if not (threaded t) then begin
    (* inline mode runs on the caller's domain, inside the request's
       trace scope already — one shard-service span covers the batch *)
    let t0 = now_ns () in
    Obs.Trace.with_span "serve.shard.service" (fun () ->
        Array.iteri
          (fun i (key, inst) ->
            let shard = t.shards.(shard_of_key t key) in
            results.(i) <- feed_keyed t shard ~key inst)
          batch);
    Obs.observe_span ~hist_buckets:Http.latency_buckets "serve.shard.service"
      ~ns:(now_ns () - t0);
    Processed results
  end
  else begin
    let nshards = Array.length t.shards in
    let buckets = Array.make nshards [] in
    for i = n - 1 downto 0 do
      let key, inst = batch.(i) in
      let s = shard_of_key t key in
      buckets.(s) <- (i, key, inst) :: buckets.(s)
    done;
    let involved =
      List.filter
        (fun s -> buckets.(s.index) <> [])
        (Array.to_list t.shards)
    in
    let cell =
      {
        results;
        remaining = Atomic.make (List.length involved);
        cm = Mutex.create ();
        cv = Condition.create ();
      }
    in
    let ctx = Obs.Trace.context () in
    (* All-or-nothing admission: take every involved shard's lock in
       ascending index order (t.shards order — no deadlock against other
       submitters), check every capacity, then enqueue everywhere or
       nowhere. A shed batch leaves no trace, so the client may retry it
       wholesale without duplicating events into some shards. *)
    List.iter (fun s -> Mutex.lock s.sm) involved;
    let admit =
      List.for_all
        (fun s ->
          (not s.stop_requested) && Queue.length s.jobs < t.capacity)
        involved
    in
    if admit then begin
      let enqueued_ns = now_ns () in
      List.iter
        (fun s ->
          Queue.add
            { items = buckets.(s.index); cell; ctx; enqueued_ns }
            s.jobs;
          Obs.gauge_set s.depth_g (Queue.length s.jobs);
          Condition.signal s.not_empty)
        involved
    end;
    List.iter (fun s -> Mutex.unlock s.sm) involved;
    if not admit then begin
      Obs.incr shed_c;
      Shed
    end
    else begin
      Mutex.lock cell.cm;
      while Atomic.get cell.remaining > 0 do
        Condition.wait cell.cv cell.cm
      done;
      Mutex.unlock cell.cm;
      Processed results
    end
  end

(* Shards whose queue is full right now — the ones on which an
   admission would shed. Inline pools never shed. *)
let saturation t =
  if not (threaded t) then []
  else
    Array.fold_right
      (fun s acc ->
        Mutex.lock s.sm;
        let queued = Queue.length s.jobs in
        Mutex.unlock s.sm;
        if queued >= t.capacity then (s.index, queued) :: acc else acc)
      t.shards []

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Array.iter
      (fun s ->
        Mutex.lock s.sm;
        s.stop_requested <- true;
        Condition.broadcast s.not_empty;
        Mutex.unlock s.sm)
      t.shards;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
