type error = { line : int; reason : string }
type keyed = { instance : Cep.Detector.instance; key : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.reason
let header = "event,timestamp,tag"
let keyed_header = "event,timestamp,tag,key"

let parse_line ~lineno line =
  let trimmed = String.trim line in
  if String.equal trimmed "" then Ok None
    (* The header is skipped wherever it appears, not just on line 1: the
       serve ingest counts lines across requests, so a client re-sending
       its header in a second POST /ingest would otherwise be rejected
       with a spurious "bad timestamp". Nothing is lost — as a data line
       it could never parse ("timestamp" is not an integer). *)
  else if String.equal trimmed header || String.equal trimmed keyed_header then
    Ok None
  else
    let fail reason = Error { line = lineno; reason } in
    let instance e ts tag key =
      match int_of_string_opt (String.trim ts) with
      | None -> fail "bad timestamp"
      | Some timestamp ->
          if String.equal e "" then fail "empty event name"
          else
            let tag =
              if String.equal tag "" then Printf.sprintf "#%d" lineno else tag
            in
            Ok (Some { instance = { Cep.Detector.event = e; timestamp; tag }; key })
    in
    match Events.Csv_io.split_line trimmed with
    | Error reason -> fail reason
    | Ok [ e; ts ] -> instance e ts "" ""
    | Ok [ e; ts; tag ] -> instance e ts tag ""
    | Ok [ e; ts; tag; key ] -> instance e ts tag key
    | Ok _ -> fail "expected event,timestamp[,tag[,key]]"

let parse_lines lines =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line ~lineno l with
        | Error e -> Error e
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some k) -> go (k :: acc) (lineno + 1) rest)
  in
  go [] 1 lines
