type error = { line : int; reason : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.reason
let header = "event,timestamp,tag"

let parse_line ~lineno line =
  let trimmed = String.trim line in
  if String.equal trimmed "" then Ok None
  else if lineno = 1 && String.equal trimmed header then Ok None
  else
    let fail reason = Error { line = lineno; reason } in
    let instance e ts tag =
      match int_of_string_opt (String.trim ts) with
      | None -> fail "bad timestamp"
      | Some timestamp ->
          let event = String.trim e in
          if String.equal event "" then fail "empty event name"
          else
            let tag =
              let tag = String.trim tag in
              if String.equal tag "" then Printf.sprintf "#%d" lineno else tag
            in
            Ok (Some { Cep.Detector.event; timestamp; tag })
    in
    match String.split_on_char ',' trimmed with
    | [ e; ts ] -> instance e ts ""
    | [ e; ts; tag ] -> instance e ts tag
    | _ -> fail "expected event,timestamp[,tag]"

let parse_lines lines =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line ~lineno l with
        | Error e -> Error e
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some i) -> go (i :: acc) (lineno + 1) rest)
  in
  go [] 1 lines
