(** Minimal dependency-free HTTP/1.1 responder over Unix loopback sockets.

    Two serving modes share one per-connection loop. {!serve} is the
    sequential accept loop: one connection at a time, so handlers may
    touch non-thread-safe state without locks. {!serve_pool} runs the
    accept loop on the calling thread and hands connections to [workers]
    domains over a bounded queue — handlers must then be safe to run
    concurrently (the sharded service is). Both modes honor
    [Connection: keep-alive] up to a per-connection request cap; the
    default remains close-after-one. {!stop} is the only cross-thread
    entry point. Binds 127.0.0.1 only — this is a telemetry port, not a
    public server.

    Every request turn runs inside an {!Obs.Request} scope: a unique
    request id is minted before the read and echoed back in an
    [X-Request-Id] response header (on error responses too); the turn's
    stage timings — conn-queue wait (pooled mode), read, handler
    service, response write — are recorded into the scope (feeding the
    [serve.access] log line and tail capture) and into the
    [serve.request.queue_wait] / [serve.request.write] span metrics
    with their [.duration_us] histograms. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
      (** extra response headers (e.g. [Retry-After]); Content-Type,
          Content-Length and Connection are emitted by the server *)
  body : string;
}

val response :
  ?status:int -> ?content_type:string -> ?headers:(string * string) list ->
  string -> response
(** [status] defaults to 200, [content_type] to
    [text/plain; charset=utf-8], [headers] to []. *)

type t

val listen : ?backlog:int -> port:int -> unit -> t
(** Bind and listen on [127.0.0.1:port]; [~port:0] picks an ephemeral
    port (read it back with {!port}). [backlog] defaults to 128 — sized
    for a worker pool draining connection bursts. @raise Unix.Unix_error
    when the port is taken. *)

val port : t -> int

val default_keepalive_limit : int
(** 100 requests per connection. *)

val latency_buckets : int array
(** Microsecond bucket bounds shared by the request-stage
    [*.duration_us] latency histograms ([serve.request.queue_wait],
    [serve.shard.service], [serve.request.write]): 50us at the fast
    end, 1s at the tail. *)

val serve :
  ?io_timeout:float -> ?keepalive_limit:int -> t -> (request -> response) ->
  unit
(** Run the sequential accept loop on the calling thread until {!stop} is
    called (possibly from another thread or domain). Malformed or
    oversized requests are answered with 400/413 without reaching the
    handler; a connection idle for more than [io_timeout] seconds
    (default 10, [0.] disables) is answered 408 so one silent client
    cannot wedge the loop; client I/O errors are swallowed. A request
    carrying [Connection: keep-alive] keeps its connection open for up to
    [keepalive_limit] requests (default {!default_keepalive_limit}), each
    turn under the same [io_timeout]; every reuse counts into the
    [serve.keepalive.reuses] counter. SIGPIPE is ignored process-wide on
    first use, so a peer that resets mid-write yields a catchable
    [EPIPE] instead of killing the process. Closes the listening socket
    on return. *)

val serve_pool :
  ?io_timeout:float ->
  ?keepalive_limit:int ->
  workers:int ->
  t ->
  (request -> response) ->
  unit
(** Like {!serve}, but connections are handed to [workers] domains over a
    bounded queue (capacity [2 * workers]); the calling thread accepts.
    When every worker is busy and the queue is full the acceptor blocks,
    so back-pressure reaches clients through the kernel backlog instead
    of unbounded buffering. The handler runs concurrently on all workers
    and must be thread-safe. On {!stop}, in-flight connections are
    finished (their read side is shut down so idle kept-alive sockets
    wake immediately), the workers are joined, and the listening socket
    is closed. @raise Invalid_argument on [workers < 1]. *)

val stopping : t -> bool

val stop : t -> unit
(** Ask the accept loop to exit: sets the stop flag, shuts down the read
    side of every in-flight connection, and wakes a blocked [accept] with
    a throwaway loopback connection. Idempotent. *)

(** {1 Loopback clients}

    Blocking requests against [127.0.0.1]; used by the tests and the
    bench loops. @raise Unix.Unix_error when the connection is
    refused. *)

val request :
  ?body:string ->
  port:int ->
  meth:string ->
  string ->
  (int * string, string) result
(** One-shot: [request ~port ~meth path] opens a fresh connection, sends
    [Connection: close], drains to EOF and returns [(status, body)]. *)

val request_full :
  ?body:string ->
  port:int ->
  meth:string ->
  string ->
  (int * (string * string) list * string, string) result
(** Like {!request} but also returns the response headers (names
    lowercased, values trimmed) — e.g. to read back [x-request-id]. *)

val get : port:int -> string -> (int * string, string) result
val post : port:int -> string -> string -> (int * string, string) result
(** [post ~port path body]. *)

(** Persistent (keep-alive) client: one TCP connection, many requests,
    responses framed by [Content-Length]. The server closes the
    connection after its keep-alive cap or on shutdown; requests then
    return [Error]. Not thread-safe — one domain per [conn]. *)
module Client : sig
  type conn

  val connect : port:int -> conn
  (** @raise Unix.Unix_error when the connection is refused. *)

  val request :
    ?body:string -> conn -> meth:string -> string ->
    (int * string, string) result

  val get : conn -> string -> (int * string, string) result
  val post : conn -> string -> string -> (int * string, string) result
  val close : conn -> unit
end
