(** Minimal dependency-free HTTP/1.1 responder over Unix loopback sockets.

    One sequential accept loop, one request per connection
    ([Connection: close]). Sequential handling serializes every route
    through the thread running {!serve}, so handlers may touch
    non-thread-safe state (the detector) without locks; {!stop} is the
    only cross-thread entry point. Binds 127.0.0.1 only — this is a
    telemetry port, not a public server. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type response = { status : int; content_type : string; body : string }

val response : ?status:int -> ?content_type:string -> string -> response
(** [status] defaults to 200, [content_type] to
    [text/plain; charset=utf-8]. *)

type t

val listen : ?backlog:int -> port:int -> unit -> t
(** Bind and listen on [127.0.0.1:port]; [~port:0] picks an ephemeral
    port (read it back with {!port}). @raise Unix.Unix_error when the
    port is taken. *)

val port : t -> int

val serve : ?io_timeout:float -> t -> (request -> response) -> unit
(** Run the accept loop on the calling thread until {!stop} is called
    (possibly from another thread or domain). Malformed or oversized
    requests are answered with 400/413 without reaching the handler; a
    connection idle for more than [io_timeout] seconds (default 10, [0.]
    disables) is answered 408 so one silent client cannot wedge the
    sequential loop; client I/O errors are swallowed. SIGPIPE is ignored
    process-wide on first use, so a peer that resets mid-write yields a
    catchable [EPIPE] instead of killing the process. Closes the
    listening socket on return. *)

val stopping : t -> bool

val stop : t -> unit
(** Ask the accept loop to exit: sets the stop flag and wakes a blocked
    [accept] with a throwaway loopback connection. Idempotent. *)

(** {1 Loopback client}

    Blocking one-shot requests against [127.0.0.1]; used by the tests and
    the bench scrape loop. @raise Unix.Unix_error when the connection is
    refused. *)

val request :
  ?body:string ->
  port:int ->
  meth:string ->
  string ->
  (int * string, string) result
(** [request ~port ~meth path] returns [(status, body)]. *)

val get : port:int -> string -> (int * string, string) result
val post : port:int -> string -> string -> (int * string, string) result
(** [post ~port path body]. *)
