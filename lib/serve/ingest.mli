(** Line-delimited event ingest: the CSV stream format
    ([event,timestamp[,tag]]) shared by the [detect] subcommand, the
    [serve] ingest endpoint and the stdin feed. Parsing is separated from
    feeding so every entry point rejects malformed input identically.

    Fields follow the RFC-4180 quoting rules of {!Events.Csv_io}: a tag
    (or event name) containing commas or quotes may be sent quoted, e.g.
    [order,7,"batch 3, retry"]. Unquoted fields are trimmed; quoted
    fields are taken verbatim. *)

type error = { line : int; reason : string }

val error_to_string : error -> string
(** ["line N: <reason>"]. *)

val header : string
(** The canonical CSV header ([event,timestamp,tag]); skipped wherever it
    appears (the serve ingest numbers lines across requests, so a second
    request may legitimately start with the header again). *)

val parse_line :
  lineno:int -> string -> (Cep.Detector.instance option, error) result
(** Parse one stream line. [Ok None] for blank lines and for the
    {!header}. A missing or empty tag defaults to ["#<lineno>"].
    [lineno] is 1-based. *)

val parse_lines : string list -> (Cep.Detector.instance list, error) result
(** All-or-nothing {!parse_line} over a document, numbering from 1. *)
