(** Line-delimited event ingest: the CSV stream format
    ([event,timestamp[,tag[,key]]]) shared by the [detect] subcommand, the
    [serve] ingest endpoint and the stdin feed. Parsing is separated from
    feeding so every entry point rejects malformed input identically.

    The optional fourth column is a {e partition key}: sharded serving
    routes every key to one detector shard, and events with different keys
    never combine into one match (see {!Shard} and [docs/SERVING.md]). A
    missing or empty key means the keyless stream — all such events share
    one implicit key (and land on shard 0, preserving today's single-
    detector behavior bit for bit). [whynot detect] ignores keys: it runs
    one detector over the interleaved stream.

    Fields follow the RFC-4180 quoting rules of {!Events.Csv_io}: a tag
    (or event name, or key) containing commas or quotes may be sent
    quoted, e.g. [order,7,"batch 3, retry",acct42]. Unquoted fields are
    trimmed; quoted fields are taken verbatim. *)

type error = { line : int; reason : string }

type keyed = {
  instance : Cep.Detector.instance;
  key : string;  (** [""] for the keyless stream *)
}

val error_to_string : error -> string
(** ["line N: <reason>"]. *)

val header : string
(** The canonical CSV header ([event,timestamp,tag]); skipped wherever it
    appears (the serve ingest numbers lines across requests, so a second
    request may legitimately start with the header again). *)

val keyed_header : string
(** The four-column header ([event,timestamp,tag,key]); skipped like
    {!header}. *)

val parse_line : lineno:int -> string -> (keyed option, error) result
(** Parse one stream line. [Ok None] for blank lines and for either
    header. A missing or empty tag defaults to ["#<lineno>"]; a missing
    key defaults to [""]. [lineno] is 1-based. *)

val parse_lines : string list -> (keyed list, error) result
(** All-or-nothing {!parse_line} over a document, numbering from 1. *)
