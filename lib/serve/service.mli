(** The telemetry service: routes, shard-pool feeding, counters and log
    events behind [whynot serve].

    Routes (see [docs/SERVING.md]):
    - [GET /metrics] — Prometheus text exposition of the full {!Obs}
      snapshot, with {!Obs.Runtime.refresh} run first so runtime gauges
      are point-in-time;
    - [GET /health] — liveness (always 200 while the process runs);
    - [GET /ready] — readiness: 503 ["stopping"] once {!log_stop} has
      been called, and 503 with a JSON body naming the saturated shard
      queues ([{"ready":false,"reason":"backpressure",...}]) while any
      shard queue is full — an admission would shed, so balancers can
      back off before paying a 429; otherwise 200;
    - [GET /debug/slow] — the tail-capture ring of {!Obs.Request}:
      retained slow / shed / errored requests, newest first, as a JSON
      span-tree summary ({!Report.Trace_json.slow_json}) with per-stage
      and per-span GC overlap; [?limit=N] caps the payload to the [N]
      most recent captures (a malformed or negative [limit] is a 400);
      [?format=jsonl|chrome|folded] re-exports the raw captured trace
      events through {!Report.Trace_json.render} instead;
    - [POST /debug/slow/clear] — empty the retained ring without
      restarting the server; answers [{"cleared":true}];
    - [GET /debug/gc] — per-domain GC pause summaries from
      {!Obs.Rt_events.summaries} (pause/split counts, max pause,
      ring-drop count, recent pauses in wall-clock ns), preceded by a
      {!Obs.Rt_events.poll_now} drain so the payload is point-in-time
      consistent with a [/metrics] scrape; [{"running":false,...}] with
      no domains until [--rt-events] profiling has run;
    - [POST /ingest] — line-delimited CSV events
      ([event,timestamp[,tag[,key]]]); responds with JSONL: one
      [{"type":"match",...}] object per completed match and one
      [{"type":"error",...}] per rejected line, reassembled in input
      order. Inside an HTTP request scope every verdict line carries the
      request id ([request_id]). When a shard queue is full the whole
      batch is shed — 429 with [Retry-After] and a JSON error body
      carrying the reason and request id, nothing applied, safe to retry
      wholesale. The plain 503 answer is reserved for "ingest is fed
      from stdin".

    Detection runs on a {!Shard} pool: one detector per partition key,
    keys hashed over [shards] shards. With [threaded:false] (the default)
    the pool is inline and {!handle}/{!ingest_line} must stay on a single
    thread (the sequential {!Http.serve} loop does); with [threaded:true]
    they are safe from any number of {!Http.serve_pool} workers.

    Counters: [serve.requests], [serve.errors], [serve.scrapes],
    [serve.ingest.lines], [serve.ingest.errors], [serve.matches],
    [serve.shed] and the per-shard [serve.shard.<k>.*] series; scrape
    latency lands in the [serve.scrape] span and its
    [serve.scrape.duration_us] histogram. Log events emitted here are
    listed in {!Obs.Log.event_names}; both catalogs are documented in
    [docs/OBSERVABILITY.md]. *)

type t

val default_max_partials : int
(** 4096, mirroring {!Cep.Detector.create}'s default — the service pins
    it explicitly so pressure warnings know the real bound. Applied per
    partition key. *)

val default_shard_queue : int
(** 64 jobs per shard queue before ingest sheds. *)

val create :
  ?engine:Cep.Detector.engine ->
  ?horizon:int ->
  ?max_partials:int ->
  ?shards:int ->
  ?shard_queue:int ->
  ?threaded:bool ->
  ?http_ingest:bool ->
  ?help:(string -> string option) ->
  Pattern.Ast.t list ->
  t
(** [engine] selects the detector engine (default [Compiled], see
    {!Cep.Detector.engine}). [shards] (default 1), [shard_queue]
    (default {!default_shard_queue}) and [threaded] (default false)
    configure the {!Shard} pool; [threaded] is {b required} when the
    service is driven from more than one domain ({!Http.serve_pool}).
    [http_ingest] (default true) controls whether [POST /ingest] feeds
    the detectors; pass [false] when events arrive on stdin (ingest then
    answers 503). [help] supplies HELP text for [/metrics] keyed by
    dotted metric name (see {!Report.Prom_text.help_of_markdown}).
    @raise Invalid_argument like {!Cep.Detector.create} and
    {!Shard.create}. *)

val pool : t -> Shard.t

val shutdown : t -> unit
(** Stop the shard pool ({!Shard.stop}): drain queued batches, join the
    shard domains. Call after the HTTP loop has returned. Idempotent. *)

val handle : t -> Http.request -> Http.response
(** Route one request; bumps counters and emits [serve.request] /
    [serve.error] log events. Never raises on bad input — unknown paths
    are 404, unknown methods 405. *)

val ingest_line : t -> lineno:int -> string -> (Cep.Detector.match_ list, string) result
(** Parse and feed one stream line (blank lines and headers are
    [Ok \[\]]); the error is the bare reason, without the line number.
    Used directly by the stdin feed; [POST /ingest] goes through the same
    pool with a shared running line counter. Emits [detector.match] /
    [detector.evict] / [detector.pressure] / [ingest.error] log events as
    appropriate. *)

val match_json :
  ?request_id:string -> line:int -> Cep.Detector.match_ -> Report.Json.t
(** The JSONL match verdict:
    [{"type":"match","line":N,"tags":{...},"timestamps":{...}}] — [line]
    is the input line that completed the match, so clients can correlate
    matches to input lines across batches (errors carry the same field).
    [request_id] (stamped automatically on the HTTP ingest path from
    {!Obs.Request.current_id}) inserts a [request_id] field after
    [line], joining the verdict to the server-side request trace. *)

val metrics_body : t -> string
(** The [/metrics] payload (refresh runtime gauges, snapshot, render). *)

val prom_content_type : string
val jsonl_content_type : string

val log_start : port:int -> unit
(** Emit the [serve.start] log event. *)

val log_stop : t -> unit
(** Mark the service not-ready (readiness flips to 503) and emit
    [serve.stop]. *)
