(** The telemetry service: routes, detector feeding, counters and log
    events behind [whynot serve].

    Routes (see [docs/SERVING.md]):
    - [GET /metrics] — Prometheus text exposition of the full {!Obs}
      snapshot, with {!Obs.Runtime.refresh} run first so runtime gauges
      are point-in-time;
    - [GET /health] — liveness (always 200 while the process runs);
    - [GET /ready] — readiness (503 once {!log_stop} has been called);
    - [POST /ingest] — line-delimited CSV events ([event,timestamp[,tag]]);
      responds with JSONL: one [{"type":"match",...}] object per completed
      match and one [{"type":"error",...}] per rejected line.

    All detector access happens inside {!handle}/{!ingest_line}, which the
    caller must keep on a single thread (the {!Http.serve} loop does).

    Counters: [serve.requests], [serve.errors], [serve.scrapes],
    [serve.ingest.lines], [serve.ingest.errors], [serve.matches]; scrape
    latency lands in the [serve.scrape] span and its
    [serve.scrape.duration_us] histogram. Log events emitted here are
    listed in {!Obs.Log.event_names}; both catalogs are documented in
    [docs/OBSERVABILITY.md]. *)

type t

val default_max_partials : int
(** 4096, mirroring {!Cep.Detector.create}'s default — the service pins
    it explicitly so pressure warnings know the real bound. *)

val create :
  ?engine:Cep.Detector.engine ->
  ?horizon:int ->
  ?max_partials:int ->
  ?http_ingest:bool ->
  ?help:(string -> string option) ->
  Pattern.Ast.t list ->
  t
(** [engine] selects the detector engine (default [Compiled], see
    {!Cep.Detector.engine}).
    [http_ingest] (default true) controls whether [POST /ingest] feeds
    the detector; pass [false] when events arrive on stdin and the HTTP
    loop runs on another domain, so the detector stays single-domain
    (ingest then answers 503). [help] supplies HELP text for [/metrics]
    keyed by dotted metric name (see {!Report.Prom_text.help_of_markdown}).
    @raise Invalid_argument like {!Cep.Detector.create}. *)

val detector : t -> Cep.Detector.t

val handle : t -> Http.request -> Http.response
(** Route one request; bumps counters and emits [serve.request] /
    [serve.error] log events. Never raises on bad input — unknown paths
    are 404, unknown methods 405. *)

val ingest_line : t -> lineno:int -> string -> (Cep.Detector.match_ list, string) result
(** Parse and feed one stream line (blank lines and the line-1 header are
    [Ok \[\]]); the error is the bare reason, without the line number.
    Used directly by the stdin feed; [POST /ingest] goes
    through the same path with a shared running line counter. Emits
    [detector.match] / [detector.evict] / [detector.pressure] /
    [ingest.error] log events as appropriate. *)

val match_json : Cep.Detector.match_ -> Report.Json.t
(** The JSONL match verdict:
    [{"type":"match","tags":{...},"timestamps":{...}}]. *)

val metrics_body : t -> string
(** The [/metrics] payload (refresh runtime gauges, snapshot, render). *)

val prom_content_type : string
val jsonl_content_type : string

val log_start : port:int -> unit
(** Emit the [serve.start] log event. *)

val log_stop : t -> unit
(** Mark the service not-ready (readiness flips to 503) and emit
    [serve.stop]. *)
