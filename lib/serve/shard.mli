(** Partition-keyed detector shards: the parallel detection core of
    [whynot serve].

    A pool owns [shards] shards; every partition key (the optional fourth
    ingest CSV column, see {!Ingest}) hashes to one shard, and each shard
    keeps {e one detector per key}, derived from a shared
    {!Cep.Detector.template} so the query is validated and compiled once
    for the whole pool. Events with different keys are independent
    logical streams — they never combine into one match. The keyless
    stream is the implicit key [""] and always lands on shard 0, which
    makes a pool bit-identical to the single sequential detector on
    keyless input.

    In {e threaded} mode each shard runs a dedicated worker domain behind
    a bounded job queue; {!submit} admits a batch all-or-nothing (a shed
    batch is never partially applied), blocks until it is processed and
    returns per-event results in input order. A full shard queue sheds
    the whole batch — the serving layer answers 429. In {e inline} mode
    (the default) there are no worker domains: the caller's domain
    processes batches synchronously, nothing ever sheds, and — like the
    unsharded service before it — the pool must be driven from one domain
    at a time.

    Per-pool metrics: [serve.shard.<k>.queue_depth] /
    [serve.shard.<k>.keys] gauges and [serve.shard.<k>.events] counters,
    plus the [serve.shed] counter; feeding also accounts
    [serve.ingest.lines] / [serve.ingest.errors] / [serve.matches] and
    emits the [detector.match] / [detector.evict] / [detector.pressure] /
    [ingest.error] log events exactly as the unsharded service did
    (pressure is per key — each key has its own partial buffer).

    Tracing: {!submit} captures the caller's {!Obs.Trace.context} with
    each job; a worker adopts it (only when it can record something)
    and emits [serve.shard.queue_wait] and [serve.shard.service] spans
    into the submitting request's trace tree, plus the
    [serve.shard.service] span metric and its [.duration_us]
    histogram. *)

type t

type outcome =
  | Processed of (Cep.Detector.match_ list, string) result array
      (** one slot per submitted event, in input order *)
  | Shed
      (** some involved shard queue was full (or the pool is stopping);
          nothing was applied *)

val create :
  ?engine:Cep.Detector.engine ->
  ?horizon:int ->
  ?max_partials:int ->
  ?shards:int ->
  ?queue_capacity:int ->
  ?threaded:bool ->
  Pattern.Ast.t list ->
  t
(** [engine], [horizon] and [max_partials] (default 4096, applied per
    key) as in {!Cep.Detector.template}. [shards] defaults to 1,
    [queue_capacity] (jobs per shard queue, threaded mode only) to 64 —
    [0] sheds every threaded batch, which is degenerate but handy for
    shedding drills and tests. [threaded] (default false) spawns one
    worker domain per shard; it is {b required} whenever the pool is
    submitted to from more than one domain. @raise Invalid_argument on
    [shards < 1], a negative capacity, or an invalid query (as
    {!Cep.Detector.create}). *)

val submit : t -> (string * Cep.Detector.instance) array -> outcome
(** Process one batch of [(key, instance)] pairs. Splits by shard,
    admits all-or-nothing, blocks until every involved shard has
    processed its sub-batch. Per-event [Error] (e.g. a decreasing
    timestamp within a key's stream) does not abort the batch. *)

val shard_count : t -> int

val queue_capacity : t -> int

val threaded : t -> bool

val shard_of_key : t -> string -> int
(** The shard a key routes to: [""] pins to 0, others hash. Exposed for
    tests and capacity planning. *)

val saturation : t -> (int * int) list
(** [(shard index, queued jobs)] for every shard whose queue is full
    right now — the shards on which an admission would shed. Always []
    for inline pools (they never shed). Backs the [/ready]
    back-pressure probe. *)

val stop : t -> unit
(** Threaded mode: ask every worker to drain its queue and exit, then
    join them. Admitted batches complete; batches submitted after stop
    are {!Shed}. Idempotent; a no-op for inline pools. *)
