let out = ref print_string
let print s = !out s
let set f = out := f
let reset () = out := print_string

(* The log channel is separate from the report channel so structured log
   lines (Obs.Log) never interleave with machine-readable stdout output
   (JSON reports, JSONL match verdicts). The hook itself lives in Obs.Log
   (Obs cannot depend on Report without a module cycle); this is the
   embedder-facing surface for it. *)
let log = Obs.Log.write
let set_log = Obs.Log.set_sink
let reset_log = Obs.Log.reset_sink
