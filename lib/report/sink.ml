let out = ref print_string
let print s = !out s
let set f = out := f
let reset () = out := print_string
