(** JSON rendering of {!Obs} metric snapshots.

    Schema (see [docs/OBSERVABILITY.md]):
    {v
    { "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <int>, ... },
      "histograms": { "<name>": { "count": n, "sum": s,
                                  "buckets": [ {"le": <int|"inf">, "n": k}, ... ] } },
      "spans":      { "<name>": { "count": n, "total_ms": f, "max_ms": f } } }
    v}
    Names are sorted; with [~timers:false] the [spans] section is
    omitted and the output is deterministic for a given workload. *)

val snapshot_delta : Obs.snapshot -> Obs.snapshot -> Obs.snapshot
(** [snapshot_delta old cur] is the scrape-to-scrape difference: counters,
    histogram counts/sums/buckets and span counts/totals are subtracted
    entry-wise (entries missing from [old] count as zero; entries present
    only in [old] are dropped). Gauges and span maxima pass through [cur]'s
    value — levels and running maxima have no meaningful difference.
    Assumes no {!Obs.reset} happened between the two snapshots (a reset
    shows up as negative deltas rather than being masked). *)

val render : ?timers:bool -> Obs.snapshot -> Json.t
(** [timers] defaults to [true]. *)

val snapshot : ?timers:bool -> unit -> Json.t
(** [render] of {!Obs.snapshot}[ ()]. *)
