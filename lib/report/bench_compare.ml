(* Diff two BENCH json reports ("whynot.bench/1" schema) on their
   deterministic work metrics. Counters and gauges are pure functions of
   the work performed, so any relative change past the threshold is a
   real behaviour change, not noise — those gate. Section timings are
   machine- and load-dependent, so they are reported but never gate. *)

type delta = {
  key : string;
  base : float;
  cur : float;
  pct : float;  (** (cur - base) / base * 100, when base <> 0 *)
}

type report = {
  threshold : float;
  regressions : delta list;  (** work metrics up more than [threshold] % *)
  improvements : delta list;  (** work metrics down more than [threshold] % *)
  new_work : delta list;  (** base 0, current nonzero — informational *)
  vanished : delta list;  (** present in base, absent or zero in current *)
  timings : delta list;  (** matching sections, informational only *)
}

let passed r = r.regressions = []

let num_fields path json =
  let member k = function
    | Json.Obj fields -> List.assoc_opt k fields
    | _ -> None
  in
  let rec walk acc = function
    | [] -> acc
    | k :: rest -> (
        match acc with Some j -> walk (member k j) rest | None -> None)
  in
  match walk (Some json) path with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Int n -> Some (k, float_of_int n)
          | Json.Float f -> Some (k, f)
          | _ -> None)
        fields
  | _ -> []

let section_times json =
  match Json.member "sections" json with
  | Some (Json.List items) ->
      List.filter_map
        (fun item ->
          match
            (Json.member "name" item, Json.member "seconds" item)
          with
          | Some (Json.String name), Some s ->
              Option.map (fun v -> (name, v)) (Json.to_float s)
          | _ -> None)
        items
  | _ -> []

let run ?(threshold = 2.0) ~baseline ~current () =
  match (Json.member "schema" baseline, Json.member "schema" current) with
  | Some (Json.String "whynot.bench/1"), Some (Json.String "whynot.bench/1")
    ->
      let work json =
        num_fields [ "metrics"; "counters" ] json
        @ List.map
            (fun (k, v) -> ("gauge:" ^ k, v))
            (num_fields [ "metrics"; "gauges" ] json)
      in
      let base_work = work baseline and cur_work = work current in
      let regressions = ref []
      and improvements = ref []
      and new_work = ref []
      and vanished = ref [] in
      List.iter
        (fun (key, base) ->
          match List.assoc_opt key cur_work with
          | None when base <> 0. ->
              vanished := { key; base; cur = 0.; pct = -100. } :: !vanished
          | None -> ()
          | Some cur ->
              if base = 0. then (
                if cur <> 0. then
                  new_work := { key; base; cur; pct = 0. } :: !new_work)
              else
                let pct = (cur -. base) /. base *. 100. in
                let d = { key; base; cur; pct } in
                if pct > threshold then regressions := d :: !regressions
                else if pct < -.threshold then
                  improvements := d :: !improvements)
        base_work;
      let timings =
        let base_t = section_times baseline in
        List.filter_map
          (fun (key, cur) ->
            Option.map
              (fun base ->
                let pct =
                  if base = 0. then 0. else (cur -. base) /. base *. 100.
                in
                { key; base; cur; pct })
              (List.assoc_opt key base_t))
          (section_times current)
      in
      Ok
        {
          threshold;
          regressions = List.rev !regressions;
          improvements = List.rev !improvements;
          new_work = List.rev !new_work;
          vanished = List.rev !vanished;
          timings;
        }
  | _ -> Error "not a whynot.bench/1 report (missing or wrong \"schema\")"

let pp ppf r =
  let metric ppf d =
    Format.fprintf ppf "  %-36s %12.0f -> %12.0f  (%+.2f%%)" d.key d.base
      d.cur d.pct
  in
  let section title ds =
    if ds <> [] then (
      Format.fprintf ppf "%s:@." title;
      List.iter (fun d -> Format.fprintf ppf "%a@." metric d) ds)
  in
  section "REGRESSIONS (work metrics, gating)" r.regressions;
  section "improvements (work metrics)" r.improvements;
  if r.new_work <> [] then (
    Format.fprintf ppf "new work metrics (absent or zero in baseline):@.";
    List.iter
      (fun d -> Format.fprintf ppf "  %-36s %30.0f@." d.key d.cur)
      r.new_work);
  if r.vanished <> [] then (
    Format.fprintf ppf "vanished work metrics:@.";
    List.iter
      (fun d -> Format.fprintf ppf "  %-36s %12.0f -> (absent)@." d.key d.base)
      r.vanished);
  if r.timings <> [] then (
    Format.fprintf ppf "timings (informational, never gate):@.";
    List.iter
      (fun d ->
        Format.fprintf ppf "  %-36s %10.3fs -> %10.3fs  (%+.2f%%)@." d.key
          d.base d.cur d.pct)
      r.timings);
  if passed r then
    Format.fprintf ppf "PASS: no work metric regressed past %.2f%%@."
      r.threshold
  else
    Format.fprintf ppf "FAIL: %d work metric(s) regressed past %.2f%%@."
      (List.length r.regressions) r.threshold
