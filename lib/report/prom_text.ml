(* Prometheus text exposition (format 0.0.4) rendering of Obs snapshots.
   Everything here is pure string building — the serving layer decides when
   to snapshot and what HELP catalog to thread in. *)

let default_namespace = "whynot"

let mangle ?(namespace = default_namespace) name =
  let buf = Buffer.create (String.length name + String.length namespace + 1) in
  if not (String.equal namespace "") then begin
    Buffer.add_string buf namespace;
    Buffer.add_char buf '_'
  end;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let span_suffix = "_seconds"
let span_max_suffix = "_max_seconds"

(* HELP payloads are raw UTF-8 with only backslash and newline escaped. *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let help_of_markdown docs name =
  (* The OBSERVABILITY.md catalogs are pipe tables whose first cell is the
     backtick-quoted dotted name and whose third cell is the meaning. The
     first matching row wins; separator rows (all dashes) are skipped. *)
  let needle = "`" ^ name ^ "`" in
  let is_separator s =
    String.for_all (fun c -> c = '-' || c = ' ' || c = ':') s
  in
  let row_cells line =
    if String.length line > 0 && line.[0] = '|' then
      String.split_on_char '|' line
      |> List.map String.trim
      |> List.filter (fun c -> not (String.equal c ""))
    else []
  in
  String.split_on_char '\n' docs
  |> List.find_map (fun line ->
         match row_cells line with
         | c1 :: _kind :: c3 :: _ when String.equal c1 needle ->
             if is_separator c3 then None else Some c3
         | _ -> None)

let fmt_seconds ns = Printf.sprintf "%.9g" (float_of_int ns /. 1e9)

let render ?namespace ?(timers = true) ?(help = fun _ -> None)
    (snap : Obs.snapshot) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  let header exposition kind source =
    let text = match help source with Some h -> h | None -> source in
    add (Printf.sprintf "# HELP %s %s\n" exposition (escape_help text));
    add (Printf.sprintf "# TYPE %s %s\n" exposition kind)
  in
  let scalar kind (name, v) =
    let e = mangle ?namespace name in
    header e kind name;
    add (Printf.sprintf "%s %d\n" e v)
  in
  List.iter (scalar "counter") snap.counters;
  List.iter (scalar "gauge") snap.gauges;
  List.iter
    (fun (name, (h : Obs.hist_snapshot)) ->
      let e = mangle ?namespace name in
      header e "histogram" name;
      let cum = ref 0 in
      List.iter
        (fun (bound, n) ->
          cum := !cum + n;
          let le =
            match bound with Some b -> string_of_int b | None -> "+Inf"
          in
          add (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" e le !cum))
        h.h_buckets;
      add (Printf.sprintf "%s_sum %d\n" e h.h_sum);
      add (Printf.sprintf "%s_count %d\n" e h.h_count))
    snap.histograms;
  if timers then
    List.iter
      (fun (name, (s : Obs.span_snapshot)) ->
        let e = mangle ?namespace name ^ span_suffix in
        header e "summary" name;
        add (Printf.sprintf "%s_sum %s\n" e (fmt_seconds s.total_ns));
        add (Printf.sprintf "%s_count %d\n" e s.s_count);
        let m = mangle ?namespace name ^ span_max_suffix in
        header m "gauge" name;
        add (Printf.sprintf "%s %s\n" m (fmt_seconds s.max_ns)))
      snap.spans;
  Buffer.contents buf

let parse_values text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if String.equal line "" || line.[0] = '#' then go acc rest
        else
          (* Samples are `name[{labels}] value`; we render no timestamps, so
             the value is everything after the last space. *)
          match String.rindex_opt line ' ' with
          | None -> Error (Printf.sprintf "malformed sample line: %S" line)
          | Some i -> (
              let name = String.trim (String.sub line 0 i) in
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              match float_of_string_opt v with
              | Some f -> go ((name, f) :: acc) rest
              | None ->
                  Error (Printf.sprintf "malformed sample value: %S" line)))
  in
  go [] (String.split_on_char '\n' text)
