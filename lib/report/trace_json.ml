module T = Obs.Trace

type format = Jsonl | Chrome | Folded

let format_name = function
  | Jsonl -> "jsonl"
  | Chrome -> "chrome"
  | Folded -> "folded"

let format_of_string = function
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | "folded" -> Some Folded
  | _ -> None

(* Payload fields of each event kind, shared by the JSONL lines and the
   chrome "args" objects. Key order is fixed, so renders are
   deterministic. *)
let payload (kind : T.kind) =
  match kind with
  | T.Span_open { name; parent } ->
      [ ("name", Json.String name); ("parent", Json.Int parent) ]
  | T.Span_close { name } -> [ ("name", Json.String name) ]
  | T.Bnb_node { level } -> [ ("level", Json.Int level) ]
  | T.Bnb_prune { reason; gap } ->
      [
        ("reason", Json.String (T.prune_reason_name reason));
        ("gap", Json.Int gap);
      ]
  | T.Bnb_incumbent { cost } -> [ ("cost", Json.Int cost) ]
  | T.Bnb_zero_stop { top } -> [ ("top", Json.Int top) ]
  | T.Stn_push { depth; consistent } ->
      [ ("depth", Json.Int depth); ("consistent", Json.Bool consistent) ]
  | T.Stn_pop { depth } -> [ ("depth", Json.Int depth) ]
  | T.Simplex_phase { phase } -> [ ("phase", Json.Int phase) ]
  | T.Simplex_outcome { outcome } -> [ ("outcome", Json.String outcome) ]
  | T.Detector_admit { live } -> [ ("live", Json.Int live) ]
  | T.Detector_evict { reason; count } ->
      [
        ("reason", Json.String (T.evict_reason_name reason));
        ("count", Json.Int count);
      ]
  | T.Detector_match { count } -> [ ("count", Json.Int count) ]
  | T.Stream_verdict { verdict } -> [ ("verdict", Json.String verdict) ]
  | T.Mark { label } -> [ ("label", Json.String label) ]

let event_obj ~timings (e : T.event) =
  Json.Obj
    (("trace", Json.Int e.trace_id)
    :: ("dom", Json.Int e.dom)
    :: ("span", Json.Int e.span)
    :: ((if timings then [ ("ts_ns", Json.Int e.ts_ns) ] else [])
       @ ("type", Json.String (T.kind_name e.kind))
       :: payload e.kind))

let jsonl ?(timings = true) events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_obj ~timings e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* chrome://tracing (and Perfetto) trace-event format: a JSON array of
   B/E duration events and "i" instants, timestamps in microseconds.
   pid = trace id, tid = emitting domain, so each query renders as its
   own process row with one track per domain. *)
let chrome events =
  let t0 =
    List.fold_left (fun acc (e : T.event) -> min acc e.ts_ns) max_int events
  in
  let us (e : T.event) = Json.Float (float_of_int (e.ts_ns - t0) /. 1e3) in
  let base (e : T.event) ~name ~ph rest =
    Json.Obj
      (("name", Json.String name)
      :: ("cat", Json.String "whynot")
      :: ("ph", Json.String ph)
      :: ("ts", us e)
      :: ("pid", Json.Int e.trace_id)
      :: ("tid", Json.Int e.dom)
      :: rest)
  in
  let render (e : T.event) =
    match e.kind with
    | T.Span_open { name; _ } -> base e ~name ~ph:"B" []
    | T.Span_close { name } -> base e ~name ~ph:"E" []
    | kind ->
        base e ~name:(T.kind_name kind) ~ph:"i"
          [ ("s", Json.String "t"); ("args", Json.Obj (payload kind)) ]
  in
  Json.to_string (Json.List (List.map render events))

(* Folded flamegraph stacks: "root;child;leaf <self-time-ns>" per line,
   aggregated over every trace in the event list (stack paths carry no
   trace id, so repeated query shapes merge). Reconstruction walks each
   domain's span open/close events in order; opens left dangling by a
   ring overrun are dropped rather than guessed at. *)
let folded events =
  let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let stacks : (int, (string * int * int ref) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let stack_of dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  List.iter
    (fun (e : T.event) ->
      let stack = stack_of e.dom in
      match e.kind with
      | T.Span_open { name; _ } -> stack := (name, e.ts_ns, ref 0) :: !stack
      | T.Span_close { name } -> (
          match !stack with
          | (top, t_open, children_ns) :: rest when top = name ->
              stack := rest;
              let total = max 0 (e.ts_ns - t_open) in
              let self = max 0 (total - !children_ns) in
              (match rest with
              | (_, _, parent_children) :: _ ->
                  parent_children := !parent_children + total
              | [] -> ());
              let path =
                String.concat ";" (List.rev_map (fun (n, _, _) -> n) !stack)
              in
              let path = if path = "" then top else path ^ ";" ^ top in
              Hashtbl.replace totals path
                (self + Option.value ~default:0 (Hashtbl.find_opt totals path))
          | _ ->
              (* close without a matching open: its open fell off the
                 ring — skip rather than corrupt the stack *)
              ())
      | _ -> ())
    events;
  Hashtbl.fold (fun path ns acc -> (path, ns) :: acc) totals []
  |> List.sort (fun (pa, na) (pb, nb) ->
         match String.compare pa pb with 0 -> Int.compare na nb | c -> c)
  |> List.map (fun (path, ns) -> Printf.sprintf "%s %d\n" path ns)
  |> String.concat ""

(* Span summaries for one captured request: pair each Span_open with its
   Span_close by span id, start times relative to the earliest event.
   Opens lost to the buffer limit (or never closed) are skipped.
   [gc_pauses] (merged disjoint wall-clock intervals, the request's
   [r_gc_pauses]) attributes runtime pause time to each span via its
   absolute [ts_ns] window. *)
let span_rows ?(gc_pauses = []) (events : T.event list) =
  let t0 =
    List.fold_left (fun acc (e : T.event) -> min acc e.ts_ns) max_int events
  in
  let opens : (int, string * int * int) Hashtbl.t = Hashtbl.create 16 in
  let rows = ref [] in
  List.iter
    (fun (e : T.event) ->
      match e.kind with
      | T.Span_open { name; parent } ->
          Hashtbl.replace opens e.span (name, parent, e.ts_ns)
      | T.Span_close _ -> (
          match Hashtbl.find_opt opens e.span with
          | Some (name, parent, ts) ->
              Hashtbl.remove opens e.span;
              rows := (e.span, name, parent, ts - t0, e.ts_ns - ts) :: !rows
          | None -> ())
      | _ -> ())
    events;
  List.sort
    (fun (ida, _, _, sa, _) (idb, _, _, sb, _) ->
      match Int.compare sa sb with 0 -> Int.compare ida idb | c -> c)
    !rows
  |> List.map (fun (id, name, parent, start_ns, dur_ns) ->
         let gc_us =
           Obs.Rt_events.overlap_us gc_pauses ~t0_ns:(t0 + start_ns)
             ~t1_ns:(t0 + start_ns + max 0 dur_ns)
         in
         Json.Obj
           [
             ("name", Json.String name);
             ("span", Json.Int id);
             ("parent", Json.Int parent);
             ("start_us", Json.Int (start_ns / 1000));
             ("duration_us", Json.Int (max 0 dur_ns / 1000));
             ("gc_overlap_us", Json.Int gc_us);
           ])

let slow_json (infos : Obs.Request.info list) =
  let req (i : Obs.Request.info) =
    Json.Obj
      [
        ("id", Json.String i.Obs.Request.r_id);
        ("method", Json.String i.r_meth);
        ("path", Json.String i.r_path);
        ("status", Json.Int i.r_status);
        ("shed", Json.Bool i.r_shed);
        ("keep_alive", Json.Bool i.r_keep_alive);
        ("bytes_in", Json.Int i.r_bytes_in);
        ("bytes_out", Json.Int i.r_bytes_out);
        ("start_ms", Json.Int i.r_start_ms);
        ("shards", Json.List (List.map (fun s -> Json.Int s) i.r_shards));
        ( "timings_us",
          Json.Obj
            [
              ("queue_wait", Json.Int i.r_queue_wait_us);
              ("read", Json.Int i.r_read_us);
              ("service", Json.Int i.r_service_us);
              ("write", Json.Int i.r_write_us);
              ("total", Json.Int i.r_total_us);
            ] );
        ( "gc_us",
          Json.Obj
            [
              ("queue_wait", Json.Int i.r_gc_queue_wait_us);
              ("read", Json.Int i.r_gc_read_us);
              ("service", Json.Int i.r_gc_service_us);
              ("write", Json.Int i.r_gc_write_us);
              ("total", Json.Int i.r_gc_overlap_us);
            ] );
        ( "trace",
          Json.Obj
            [
              ("events", Json.Int (List.length i.r_events));
              ("dropped", Json.Int i.r_events_dropped);
              ( "spans",
                Json.List (span_rows ~gc_pauses:i.r_gc_pauses i.r_events) );
            ] );
      ]
  in
  Json.to_string (Json.Obj [ ("requests", Json.List (List.map req infos)) ])

let render ?timings format events =
  match format with
  | Jsonl -> jsonl ?timings events
  | Chrome -> chrome events
  | Folded -> folded events

let write_file ?timings ~format path events =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (render ?timings format events))
