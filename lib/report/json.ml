type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(indent = 0) v =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape buf k;
            Buffer.add_char buf ':';
            if indent > 0 then Buffer.add_char buf ' ';
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

exception Bad of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let peek_is c = !pos < n && Char.equal input.[!pos] c in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek_is c then advance () else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad unicode escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek_is ']' then (advance (); List [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek_is '}' then (advance (); Obj [])
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
