(** Regression gate over two bench reports ([whynot.bench/1] JSON, as
    written by [bench/main.exe]).

    Deterministic work metrics — the [metrics.counters] and
    [metrics.gauges] sections — gate: a counter that grew more than
    [threshold] percent over the baseline is a regression (more pivots,
    more nodes, more evictions for the same workload). Wall-clock
    section timings are machine-dependent and are reported but never
    gate. *)

type delta = { key : string; base : float; cur : float; pct : float }

type report = {
  threshold : float;  (** gating threshold, percent *)
  regressions : delta list;
  improvements : delta list;
  new_work : delta list;  (** zero/absent in baseline — informational *)
  vanished : delta list;  (** nonzero in baseline, absent in current *)
  timings : delta list;  (** informational only *)
}

val run :
  ?threshold:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (report, string) result
(** [threshold] defaults to 2.0 (percent). [Error] when either document
    is not a [whynot.bench/1] report. *)

val passed : report -> bool
(** True iff [regressions] is empty. *)

val pp : Format.formatter -> report -> unit
