(** Where human-readable experiment output goes. Library code must not write
    to stdout directly (enforced by whynot-check's no-stdout rule); modules
    that render tables route them through this sink, which defaults to stdout
    and can be redirected by embedders and tests. *)

val print : string -> unit
(** Write through the current sink (default: stdout). *)

val set : (string -> unit) -> unit
(** Redirect the sink, e.g. to a [Buffer] in tests. *)

val reset : unit -> unit
(** Restore the default stdout sink. *)
