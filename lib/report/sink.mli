(** Where human-readable experiment output goes. Library code must not write
    to stdout directly (enforced by whynot-check's no-stdout rule); modules
    that render tables route them through this sink, which defaults to stdout
    and can be redirected by embedders and tests.

    A second, independent channel carries structured log lines ({!Obs.Log});
    it defaults to {e stderr} so logs never interleave with machine-readable
    stdout output (JSON reports, JSONL match verdicts). *)

val print : string -> unit
(** Write through the current sink (default: stdout). *)

val set : (string -> unit) -> unit
(** Redirect the sink, e.g. to a [Buffer] in tests. *)

val reset : unit -> unit
(** Restore the default stdout sink. *)

val log : string -> unit
(** Write one structured log line through the log channel (default:
    stderr, flushed per line). *)

val set_log : (string -> unit) -> unit
(** Redirect the log channel, e.g. to a [Buffer] in tests or a file in a
    deployment. *)

val reset_log : unit -> unit
(** Restore the default stderr log channel. *)
