let hist (h : Obs.hist_snapshot) =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Int h.h_sum);
      ( "buckets",
        Json.List
          (List.map
             (fun (bound, n) ->
               Json.Obj
                 [
                   ( "le",
                     match bound with
                     | Some b -> Json.Int b
                     | None -> Json.String "inf" );
                   ("n", Json.Int n);
                 ])
             h.h_buckets) );
    ]

let span (s : Obs.span_snapshot) =
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("total_ms", Json.Float (float_of_int s.total_ns /. 1e6));
      ("max_ms", Json.Float (float_of_int s.max_ns /. 1e6));
    ]

let snapshot_delta (old_ : Obs.snapshot) (cur : Obs.snapshot) : Obs.snapshot =
  let lookup section name =
    List.find_map
      (fun (n, v) -> if String.equal n name then Some v else None)
      section
  in
  let sub_ints section old =
    List.map
      (fun (name, v) ->
        (name, v - Option.value ~default:0 (lookup old name)))
      section
  in
  let sub_hist (cur : Obs.hist_snapshot) (old : Obs.hist_snapshot option) =
    match old with
    | None -> cur
    | Some o ->
        let same_bounds =
          List.length cur.h_buckets = List.length o.h_buckets
          && List.for_all2
               (fun (b, _) (b', _) -> Option.equal Int.equal b b')
               cur.h_buckets o.h_buckets
        in
        {
          h_count = cur.h_count - o.h_count;
          h_sum = cur.h_sum - o.h_sum;
          h_buckets =
            (* Bounds are fixed at registration, so a mismatch means the
               snapshots straddle a re-registration; keep the current
               buckets rather than subtracting unrelated bins. *)
            (if same_bounds then
               List.map2
                 (fun (b, n) (_, n') -> (b, n - n'))
                 cur.h_buckets o.h_buckets
             else cur.h_buckets);
        }
  in
  let sub_span (cur : Obs.span_snapshot) (old : Obs.span_snapshot option) =
    match old with
    | None -> cur
    | Some o ->
        {
          s_count = cur.s_count - o.s_count;
          total_ns = cur.total_ns - o.total_ns;
          (* The per-window maximum is not derivable from two running
             maxima; pass the cumulative one through. *)
          max_ns = cur.max_ns;
        }
  in
  {
    counters = sub_ints cur.counters old_.counters;
    (* Gauges are levels, not accumulators: the meaningful "delta" reading
       is the current level. *)
    gauges = cur.gauges;
    histograms =
      List.map
        (fun (name, h) -> (name, sub_hist h (lookup old_.histograms name)))
        cur.histograms;
    spans =
      List.map
        (fun (name, s) -> (name, sub_span s (lookup old_.spans name)))
        cur.spans;
  }

let render ?(timers = true) (snap : Obs.snapshot) =
  let obj section f = Json.Obj (List.map (fun (name, v) -> (name, f v)) section) in
  Json.Obj
    (("counters", obj snap.counters (fun n -> Json.Int n))
    :: ("gauges", obj snap.gauges (fun n -> Json.Int n))
    :: ("histograms", obj snap.histograms hist)
    :: (if timers then [ ("spans", obj snap.spans span) ] else []))

let snapshot ?timers () = render ?timers (Obs.snapshot ())
