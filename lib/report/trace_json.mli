(** Renderers for {!Obs.Trace} event streams.

    Three formats over the same events:
    - [Jsonl] — one JSON object per line per event; [~timings:false]
      strips the [ts_ns] field, making the output byte-identical across
      identical runs (asserted in tests).
    - [Chrome] — the Chrome trace-event JSON array; load the file in
      [chrome://tracing] or Perfetto. Spans become B/E duration events,
      point events become thread-scoped instants; [pid] is the trace id,
      [tid] the emitting domain.
    - [Folded] — folded flamegraph stacks ("a;b;c <self-ns>" lines),
      aggregated across traces; feed to [flamegraph.pl] or any folded
      renderer. Weights are span {e self} times in nanoseconds.

    The schemas are documented in [docs/OBSERVABILITY.md]. *)

type format = Jsonl | Chrome | Folded

val format_name : format -> string
val format_of_string : string -> format option

val jsonl : ?timings:bool -> Obs.Trace.event list -> string
(** [timings] defaults to [true]. *)

val chrome : Obs.Trace.event list -> string
(** Timestamps are microseconds relative to the first event. *)

val folded : Obs.Trace.event list -> string

val render : ?timings:bool -> format -> Obs.Trace.event list -> string
(** [timings] only affects [Jsonl]. *)

val slow_json : Obs.Request.info list -> string
(** The [GET /debug/slow] payload: a JSON object
    [{"requests":[...]}] with, per retained request, its id / route /
    status / shed and keep-alive flags / byte counts, the shard indices
    its batch lines were routed to, the decomposed stage timings in
    microseconds, the GC pause overlap per stage ([gc_us], from
    {!Obs.Rt_events} attribution — all zero when profiling is off), and
    a span-tree summary of the captured trace (one row per matched
    open/close pair: name, span and parent ids, start offset, duration
    and GC overlap in microseconds). Raw events remain exportable
    through {!render} in any {!format}. *)

val write_file : ?timings:bool -> format:format -> string -> Obs.Trace.event list -> unit
