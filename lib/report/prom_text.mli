(** Prometheus text exposition (format 0.0.4) rendering of {!Obs} snapshots.

    Mapping from the dotted registry names to exposition names:
    - counters, gauges, histograms: [mangle name] (dots and any other
      non-alphanumeric characters become underscores, prefixed with the
      [whynot_] namespace), e.g. [detector.matches] → [whynot_detector_matches];
    - histograms additionally emit cumulative [_bucket{le="..."}] series, a
      [_sum] and a [_count], with the implicit +inf bucket rendered as
      [le="+Inf"] and always equal to [_count];
    - spans render as a summary [mangle name ^ "_seconds"] ([_sum]/[_count],
      nanoseconds converted to seconds) plus a [mangle name ^ "_max_seconds"]
      gauge for the running maximum.

    The full name mapping for the current catalog is tabulated in
    [docs/OBSERVABILITY.md]. *)

val default_namespace : string
(** ["whynot"]. *)

val mangle : ?namespace:string -> string -> string
(** Exposition base name for a dotted registry name: characters outside
    [\[A-Za-z0-9_\]] become ['_'], prefixed with [namespace ^ "_"] (pass
    [~namespace:""] to suppress the prefix). Injective on the current
    catalog — enforced by the exposition conformance test. *)

val span_suffix : string
(** ["_seconds"] — appended to [mangle name] for span summaries. *)

val span_max_suffix : string
(** ["_max_seconds"] — appended to [mangle name] for span maxima gauges. *)

val escape_help : string -> string
(** HELP-line payload escaping: backslash → [\\], newline → [\n]. *)

val help_of_markdown : string -> string -> string option
(** [help_of_markdown docs name] extracts the meaning column for [name] from
    a markdown catalog table (rows shaped [| `name` | kind | meaning |], as
    in [docs/OBSERVABILITY.md]). First matching row wins. *)

val render :
  ?namespace:string ->
  ?timers:bool ->
  ?help:(string -> string option) ->
  Obs.snapshot ->
  string
(** Render a snapshot to exposition text. Every series is preceded by
    [# HELP] and [# TYPE] lines; [help] supplies the HELP payload keyed by
    the {e dotted} source name (default: the dotted name itself, so the
    source metric is always recoverable from the output). [~timers:false]
    omits the span summaries, making the output deterministic for a given
    workload. *)

val parse_values : string -> ((string * float) list, string) result
(** Parse exposition text back to [(sample-key, value)] pairs in document
    order, where the sample key includes any label set verbatim (e.g.
    [whynot_lp_iterations_bucket{le="5"}]). Comment and blank lines are
    skipped; the first malformed sample line yields [Error]. Used by the
    scrape tests and the bench smoke check. *)
