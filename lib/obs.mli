(** Lightweight observability: global counters, gauges, histograms and
    timing spans for the engine's hot paths.

    Every metric lives in one process-wide registry keyed by a dotted
    name ([simplex.pivots], [detector.matches], ...). Call sites obtain a
    handle once — typically at module initialisation — and then update it
    with no allocation and no lock on the hot path: all cells are
    {!Atomic} ints, so updates are safe and lossless under {!Cep.Bulk}'s
    domains.

    {b Determinism.} Counters, gauges and histograms are pure functions
    of the work performed, so a {!snapshot} restricted to them is
    byte-identical across runs on the same input. Spans measure
    wall-clock time and are not deterministic.

    This module is dependency-free; {!Report.Obs_json} renders a
    snapshot as JSON. Metric names, units and the snapshot schema are
    documented in [docs/OBSERVABILITY.md]. *)

type counter
type gauge
type histogram

(** {1 Registration (get-or-create, idempotent)} *)

val counter : string -> counter
(** Monotonic event count. @raise Invalid_argument if the name is
    already registered as a different metric kind. *)

val gauge : string -> gauge
(** Point-in-time level (last value wins; or use {!gauge_max} for a
    high-water mark). @raise Invalid_argument on a kind clash. *)

val histogram : ?buckets:int array -> string -> histogram
(** Distribution of integer sizes/latencies over fixed, strictly
    increasing bucket upper bounds ([buckets] defaults to
    {!default_buckets}; a final +inf bucket is implicit). On repeated
    registration the first bounds win. @raise Invalid_argument on a kind
    clash or non-increasing bounds. *)

val default_buckets : int array

(** {1 Hot-path updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge_set : gauge -> int -> unit
val gauge_max : gauge -> int -> unit
(** [gauge_max g v] raises the gauge to [v] if [v] is larger (atomic). *)

val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one sample into the bucket of the smallest bound [>=] sample. *)

val with_span : ?hist_buckets:int array -> string -> (unit -> 'a) -> 'a
(** [with_span label f] runs [f ()] and aggregates its wall-clock
    duration (count / total / max, nanoseconds) under [label]. The
    duration is recorded even when [f] raises. Span registration is
    keyed like any other metric; @raise Invalid_argument on a kind
    clash.

    With [hist_buckets], each duration is additionally observed — in
    {e microseconds} — into a histogram registered as
    [label ^ ".duration_us"] with those bucket bounds, so percentile
    (p50/p95) latency series can be derived from the [_bucket] counts
    exposed by {!Report.Prom_text}. As with {!histogram}, the first
    registration's bounds win. *)

val observe_span : ?hist_buckets:int array -> string -> ns:int -> unit
(** [observe_span label ~ns] records one externally measured duration
    (nanoseconds) into the span metric registered under [label] —
    count / total / max, exactly as {!with_span} would — for intervals
    that cannot be wrapped in a closure (a queue wait that elapsed
    before the measuring scope opened, a write timed alongside other
    bookkeeping). [hist_buckets] derives the same
    [label ^ ".duration_us"] microsecond histogram as {!with_span}. *)

(** {1 Snapshot / reset} *)

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_buckets : (int option * int) list;
      (** (upper bound, samples); [None] is the +inf overflow bucket *)
}

type span_snapshot = { s_count : int; total_ns : int; max_ns : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
  spans : (string * span_snapshot) list;
}
(** All sections sorted by metric name — deterministic apart from the
    timing fields of [spans]. *)

val find_counter : string -> int option
(** Current value of a registered counter, by name. *)

val find_gauge : string -> int option
(** Current value of a registered gauge, by name. *)

val find_histogram : string -> hist_snapshot option
(** Snapshot of a registered histogram, by name. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). A
    {!with_span} in flight across a [reset] records {e nothing}: its
    start time predates the reset, so folding it into the zeroed cell
    would fabricate pre-reset wall-clock. *)

val snapshot : unit -> snapshot

(** Structured, low-overhead execution tracing layered on the registry.

    A {e trace} is one top-level query — one {!Trace.with_trace} scope:
    a pipeline explain, a consistency check, a detector feed. Inside it,
    {!Trace.with_span} opens nested scopes forming the trace tree, and
    {!Trace.emit} records typed point events (search prunes, STN
    pushes, simplex phases, ...). Events land in one process-wide
    bounded ring buffer: a writer claims a slot with a single
    fetch-and-add (lock-free, domain-safe); claims past the end are
    counted as drops, never blocked on.

    {b Cost.} With tracing disabled (the default), every instrumented
    site reduces to one atomic load and a branch — no allocation, no
    ring traffic. [with_trace]/[with_span] are identity wrappers. With
    tracing enabled, a sampled-out trace suppresses all its spans and
    events at the same single-load cost.

    {b Sampling.} [configure ~sample:n] records every [n]-th top-level
    trace (the 1st, [n+1]-th, ... by arrival order of [with_trace]),
    deterministically: sampling depends only on the trace sequence
    number, never on time or randomness.

    {b Determinism.} Trace/span IDs are dense sequence numbers reset by
    [configure]/[clear]; on a single domain the event order is the
    execution order, so two identical runs yield identical event
    streams apart from the [ts_ns] fields ({!Report.Trace_json} can
    strip those). Cross-domain interleaving in the ring is not
    deterministic.

    Renderers (JSONL, Chrome trace-event, folded flamegraph stacks)
    live in {!Report.Trace_json}; the event schema is documented in
    [docs/OBSERVABILITY.md]. *)
module Trace : sig
  type prune_reason = Bound | Inconsistent | Plausibility
  type evict_reason = Horizon | Capacity

  type kind =
    | Span_open of { name : string; parent : int }
    | Span_close of { name : string }
    | Bnb_node of { level : int }  (** a search node was branched upon *)
    | Bnb_prune of { reason : prune_reason; gap : int }
        (** subtree cut; [gap] = lower bound − incumbent for [Bound] *)
    | Bnb_incumbent of { cost : int }  (** new best leaf cost *)
    | Bnb_zero_stop of { top : int }  (** zero-cost incumbent ended the search *)
    | Stn_push of { depth : int; consistent : bool }
    | Stn_pop of { depth : int }
    | Simplex_phase of { phase : int }  (** phase 1/2 started *)
    | Simplex_outcome of { outcome : string }
    | Detector_admit of { live : int }  (** live partials after a feed *)
    | Detector_evict of { reason : evict_reason; count : int }
    | Detector_match of { count : int }
    | Stream_verdict of { verdict : string }
    | Mark of { label : string }  (** generic instant event *)

  type event = {
    ts_ns : int;  (** wall-clock, nanoseconds *)
    dom : int;  (** domain that emitted the event *)
    trace_id : int;  (** 1-based top-level trace sequence number *)
    span : int;
        (** enclosing span id (0 = trace root); for [Span_open]/[Span_close]
            the id of the span itself *)
    kind : kind;
  }

  val prune_reason_name : prune_reason -> string
  val evict_reason_name : evict_reason -> string

  val kind_name : kind -> string
  (** Dotted event-type name ([bnb.prune], [stn.push], ...). *)

  val kind_names : string list
  (** Every name {!kind_name} can return — the catalog the docs lint
      checks against [docs/OBSERVABILITY.md]. *)

  (** {1 Lifecycle} *)

  val default_capacity : int

  val configure : ?capacity:int -> ?sample:int -> unit -> unit
  (** Allocate a fresh ring of [capacity] events (default
      {!default_capacity}), set the sampling period (default 1 = every
      trace), zero all ids/counters and enable tracing.
      @raise Invalid_argument if [capacity < 1] or [sample < 1]. *)

  val enable : unit -> unit
  (** Re-enable after {!disable} (configures with defaults if never
      configured). The ring and ids are kept. *)

  val disable : unit -> unit
  val enabled_now : unit -> bool

  val clear : unit -> unit
  (** Drop all events and reset ids, keeping capacity, sampling and the
      enabled flag. No-op if never configured. *)

  val sampling : unit -> int
  val capacity : unit -> int

  (** {1 Hot path} *)

  val should_emit : unit -> bool
  (** True iff tracing is enabled {e and} the calling domain is inside a
      sampled-in trace. Instrumented sites guard with this before
      constructing a {!kind}, so a disabled tracer costs one atomic
      load and zero allocation. *)

  val emit : kind -> unit
  (** Record one event under the current span. Cheap no-op when
      {!should_emit} is false. *)

  val with_trace : string -> (unit -> 'a) -> 'a
  (** Top-level query scope: starts a new trace (subject to sampling)
      and opens its root span. Nested calls do {e not} start a new
      trace — they open a child span of the enclosing one, so
      instrumented layers compose safely. Exception-safe. *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** Child span of the current span; identity when no sampled-in trace
      is active. Exception-safe: the close event is recorded even when
      [f] raises. *)

  val span_interval : string -> t0_ns:int -> t1_ns:int -> unit
  (** Record an already-elapsed interval as a span: a
      [Span_open]/[Span_close] pair with the given wall-clock
      timestamps, parented under the current span. Used for backdated
      stages — a connection's wait in the accept queue ends before any
      measuring scope can open inside it. Cheap no-op when
      {!should_emit} is false. *)

  (** {1 Cross-domain propagation} *)

  type context

  val context : unit -> context
  (** Capture the calling domain's trace position (trace id, span,
      active flag, capture buffer) — e.g. before [Domain.spawn] or when
      enqueueing a job for a worker domain. *)

  val with_context : context -> (unit -> 'a) -> 'a
  (** Run [f] inside the captured position, so a worker domain's spans
      and events join the spawning trace's tree (and its capture
      buffer, if one is attached). *)

  val context_active : context -> bool
  (** Whether adopting this context could record anything — it was
      captured inside a sampled-in trace or a capture scope. Workers
      guard their {!with_context} adoption with this so an untraced
      request costs them nothing. *)

  (** {1 Per-request capture buffers}

      A buffer collects one scope's events privately — independent of
      the global ring, and working even when global tracing is
      {e disabled}: {!with_capture} makes {!should_emit} true for the
      scope, so the same instrumented sites feed it. This is the
      mechanism behind tail-based request capture ({!Obs.Request}):
      every request records into its own small buffer, and only slow /
      shed / errored ones are retained. *)

  type buffer

  val default_buffer_limit : int

  val buffer : ?limit:int -> unit -> buffer
  (** A fresh bounded buffer ([limit] defaults to
      {!default_buffer_limit}); appends past the limit are dropped and
      counted. Domain-safe: shard workers append concurrently via an
      adopted {!context}. @raise Invalid_argument if [limit < 1]. *)

  val with_capture : buffer -> string -> (unit -> 'a) -> 'a
  (** [with_capture buf name f] runs [f] as a new top-level trace scope
      whose events are appended to [buf] (always) and to the global
      ring (only if tracing is enabled and the trace samples in — ring
      sampling is unchanged). Opens a root span [name]; exception-safe;
      restores the caller's context on exit. *)

  val buffer_events : buffer -> event list
  (** Events in emission order. Call after the capture scope has closed
      and worker domains have completed their adopted sections. *)

  val buffer_dropped : buffer -> int
  (** Events lost to the buffer's limit. *)

  (** {1 Reading the ring} *)

  val events : unit -> event list
  (** Recorded events in claim order. Call after worker domains have
      been joined; slots claimed but not yet written are skipped. *)

  val emitted : unit -> int
  (** Events emitted since configure/clear, recorded or dropped. *)

  val recorded : unit -> int

  val dropped : unit -> int
  (** Exact count of events lost to ring overrun:
      [emitted () = recorded () + dropped ()]. *)
end

(** Leveled structured JSON logging.

    One JSON object per line, written through {!Report.Sink.log}
    (default: stderr, flushed per line), so a long-running service is
    debuggable without attaching a tracer and without polluting
    machine-readable stdout. Line shape:

    {v {"ts_ms":<int>,"level":"info","event":"<type>",<field>:<value>,...} v}

    Field order is fixed ([ts_ms], [level], [event], then the call's
    fields in order); keys and string values are JSON-escaped. Logging
    is disabled by default; the disabled hot path is one atomic load.
    Event-type names emitted by the engine are listed in
    {!Log.event_names} and documented in [docs/OBSERVABILITY.md]
    (enforced by the docs lint). *)
module Log : sig
  type level = Error | Warn | Info | Debug

  val level_name : level -> string
  val level_of_string : string -> level option
  (** Accepts ["error"], ["warn"]/["warning"], ["info"], ["debug"]. *)

  val set_level : level option -> unit
  (** [Some l] emits events at [l] and above (Error < Warn < Info <
      Debug); [None] disables logging entirely (the default). *)

  val level : unit -> level option

  val enabled : level -> bool
  (** Whether an event at this level would currently be emitted. *)

  type value = Str of string | Num of int | Flt of float | Bool of bool

  val write : string -> unit
  (** Write a raw line through the current log output hook (default:
      stderr, flushed per line). {!Report.Sink.log} is an alias. *)

  val set_sink : (string -> unit) -> unit
  (** Redirect log output, e.g. to a [Buffer] in tests or a file in a
      deployment. {!Report.Sink.set_log} is an alias. *)

  val reset_sink : unit -> unit
  (** Restore the default stderr output. *)

  val emit : level -> string -> (string * value) list -> unit
  (** [emit lvl event fields] writes one log line (cheap no-op when the
      level is suppressed). [event] is a dotted event-type name from
      {!event_names} for engine events; embedders may use their own
      names. Non-finite [Flt] values render as [null]. Also bumps the
      [log.lines] counter. *)

  val event_names : string list
  (** Every event type the engine itself emits — the catalog the docs
      lint checks against [docs/OBSERVABILITY.md]. *)
end

(** Runtime GC/domain profiling via OCaml 5's [Runtime_events] tracing,
    in self-monitoring mode: the process observes its own runtime ring.

    {!Rt_events.start} enables the runtime's event stream and spawns a
    poller domain that drains it on a fixed interval, decoding GC phase
    begin/end pairs into stop-the-world {e pause intervals} per domain.
    Each completed pause feeds:

    - the [runtime.gc.pause.duration_us] histogram (shared microsecond
      buckets, {!Rt_events.pause_buckets});
    - split counters [runtime.gc.pause.minor] / [.major] / [.compact];
    - a per-domain high-water gauge [runtime.dom.<d>.gc.max_pause_us]
      (registered for ring domains [0 ..] {!Rt_events.max_gauge_domains}
      [- 1]; higher indices still feed everything else);
    - a bounded per-domain ring of recent pauses backing
      {!Rt_events.summaries} ([GET /debug/gc]) and
      {!Rt_events.pauses_between} (per-request GC attribution).

    Ring overwrites are counted exactly in [runtime.events.dropped];
    events the {e runtime's} ring lost before the poller could read
    them are counted in [runtime.events.lost].

    Nested phases (a minor collection inside a major slice) record one
    pause, classed by the outermost phase — intervals never
    double-count. Timestamps from the runtime are monotonic; a
    calibration step in [start] anchors them to the wall clock so pause
    intervals are directly comparable with {!Trace} span timestamps.

    When profiling is off this module costs nothing on the request
    path: {!Rt_events.active} is a single atomic load. *)
module Rt_events : sig
  val pause_buckets : int array
  (** Microsecond bucket bounds of [runtime.gc.pause.duration_us] —
      the serving stack's request-stage latency buckets, so pause and
      stage percentiles are computed on the same grid. *)

  val max_gauge_domains : int
  (** Number of pre-registered [runtime.dom.<d>.gc.max_pause_us]
      gauges (domains [0 .. max_gauge_domains - 1]). *)

  type pause_class = Minor | Major | Compact

  val pause_class_name : pause_class -> string

  type pause = {
    p_class : pause_class;
    p_start_ns : int;  (** wall-clock nanoseconds *)
    p_end_ns : int;
  }

  (** {1 Lifecycle} *)

  val default_ring_capacity : int

  val start : ?interval_s:float -> ?ring_capacity:int -> unit -> unit
  (** Enable the runtime event stream and spawn the poller domain
      ([interval_s] poll period, default 2ms; [ring_capacity] recent
      pauses retained per domain, default {!default_ring_capacity}).
      Idempotent while running. Decoder state from a previous
      start/stop cycle is discarded; the cumulative metrics are kept.
      @raise Invalid_argument if [interval_s <= 0] or
      [ring_capacity < 1]. *)

  val stop : unit -> unit
  (** Join the poller after a final drain and pause the runtime's event
      stream. Decoded pause state remains queryable. Idempotent. *)

  val running : unit -> bool

  val active : unit -> bool
  (** Whether pause data exists to attribute against: running, or
      stopped with calibrated pauses still retained. One atomic load —
      the request path's guard. *)

  val poll_now : unit -> int
  (** Drain the runtime ring immediately on the calling thread (the
      poller normally does this on its interval). Returns the number of
      events consumed; 0 when not started or when a concurrent drain is
      in flight. *)

  (** {1 Queries} *)

  type dom_summary = {
    d_dom : int;  (** runtime ring domain index *)
    d_pauses : int;  (** pauses recorded since start *)
    d_minor : int;
    d_major : int;
    d_compact : int;
    d_max_pause_us : int;
    d_dropped : int;  (** pauses evicted from the recent-pause ring *)
    d_recent : pause list;  (** oldest first, wall-clock ns *)
  }

  val summaries : unit -> dom_summary list
  (** Per-domain pause summaries, sorted by domain index — the payload
      behind [GET /debug/gc]. *)

  val pauses_between : t0_ns:int -> t1_ns:int -> unit -> (int * int) list
  (** All recorded pauses (any domain) intersecting the wall-clock
      window, clipped to it, merged into a sorted {e disjoint} interval
      list — concurrent multi-domain pauses collapse, so overlap sums
      never double-count. *)

  val overlap_us : (int * int) list -> t0_ns:int -> t1_ns:int -> int
  (** Microseconds of the disjoint interval list (as returned by
      {!pauses_between}) falling inside [t0_ns, t1_ns] — per-stage GC
      attribution. *)

  (** {1 Test hooks} *)

  val inject_for_test :
    dom:int -> cls:pause_class -> t0_ns:int -> t1_ns:int -> unit
  (** Push a synthetic pause (wall-clock ns) through the real recording
      path: ring eviction, split counters, histogram, gauges. *)

  val reset_for_test : ?ring_capacity:int -> unit -> unit
  (** Forget decoded pauses and the clock calibration, optionally
      resizing the per-domain recent-pause rings (ignored when [< 1]).
      The cumulative metric cells are unaffected. *)
end

(** Per-request observability for the serving stack: unique request
    ids, decomposed latency accounting, a structured access-log line
    per request, and tail-based trace retention.

    {!with_scope} wraps one HTTP request turn. It mints a request id,
    and — when capture is enabled via {!configure} — runs the turn
    inside a {!Trace.with_capture} scope so every span and event the
    request touches (including shard workers that adopt the request's
    {!Trace.context}) lands in a private per-request buffer. When the
    scope closes, an access-log line is emitted ({!Log} event
    [serve.access]), and the request is retained in a bounded ring if
    it was slow (service + write time over {!threshold_us}), shed, or
    errored (status >= 400) — the ring backs [GET /debug/slow].

    Capture is {e off} by default and costs nothing disabled; the
    access log follows the global {!Log} level. *)
module Request : sig
  (** {1 Configuration} *)

  val configure : ?threshold_us:int -> ?capacity:int -> unit -> unit
  (** Enable tail capture. [threshold_us] (default 100_000 = 100ms) is
      the service+write retention threshold; [capacity] (default
      {!default_capacity}) resizes (and clears) the retained ring.
      [capacity <= 0] disables capture instead.
      @raise Invalid_argument if [threshold_us < 0]. *)

  val disable : unit -> unit
  val capture_enabled : unit -> bool
  val threshold_us : unit -> int
  val capacity : unit -> int
  val default_capacity : int

  val set_access_level : Log.level option -> unit
  (** Level the per-request [serve.access] log line is emitted at
      (default [Some Info]); [None] silences access logging without
      touching the global log level. *)

  val access_level : unit -> Log.level option

  (** {1 Request scopes} *)

  type scope

  val with_scope : (scope -> 'a) -> 'a
  (** Run one request turn. The scope carries the request id and the
      mutable timing/route fields the server fills in as the turn
      progresses; on exit (normal or raised) the access-log line is
      emitted and retention is decided. Single-writer: only the domain
      running the turn may call the setters. *)

  val id : scope -> string

  val current_id : unit -> string option
  (** The id of the scope the calling domain is currently inside, if
      any — lets verdict renderers stamp the request id without
      threading the scope through every call. *)

  val set_route : scope -> meth:string -> path:string -> unit
  val set_status : scope -> int -> unit
  val set_bytes_in : scope -> int -> unit
  val set_bytes_out : scope -> int -> unit
  val set_keep_alive : scope -> bool -> unit

  val note_shard : int -> unit
  (** Record that a line of the current request's batch was routed to
      this shard (deduplicated; no-op outside a scope). Called by the
      ingest path as it keys each batch line, from the domain running
      the turn. *)

  val set_queue_wait : scope -> int -> unit
  (** Stage timings, nanoseconds. *)

  val set_read : scope -> int -> unit
  val set_service : scope -> int -> unit
  val set_write : scope -> int -> unit

  val abandon : scope -> unit
  (** Mark the scope as a non-request (a keep-alive connection that
      closed cleanly between requests): no access log, no retention. *)

  (** {1 Retained tail} *)

  type info = {
    r_id : string;
    r_meth : string;
    r_path : string;
    r_status : int;
    r_bytes_in : int;
    r_bytes_out : int;
    r_shed : bool;  (** status 429 *)
    r_keep_alive : bool;
    r_start_ms : int;  (** wall-clock request start, milliseconds *)
    r_queue_wait_us : int;
    r_read_us : int;
    r_service_us : int;
    r_write_us : int;
    r_total_us : int;
    r_shards : int list;
        (** shard indices this request's ingest lines were routed to,
            ascending, deduplicated (see {!note_shard}) *)
    r_gc_pauses : (int * int) list;
        (** merged GC pause intervals (wall-clock ns,
            {!Rt_events.pauses_between}) intersecting the request
            window, captured at completion — span overlaps stay
            computable after retention *)
    r_gc_overlap_us : int;  (** GC pause time inside the request window *)
    r_gc_queue_wait_us : int;  (** ... inside each stage window *)
    r_gc_read_us : int;
    r_gc_service_us : int;
    r_gc_write_us : int;
    r_events : Trace.event list;  (** the request's captured span tree *)
    r_events_dropped : int;
  }

  val retained : unit -> info list
  (** Retained requests, newest first. *)

  val clear_retained : unit -> unit
end

(** Process-level runtime gauges: OCaml GC statistics, process uptime,
    and {!Trace} ring occupancy. Registered (at zero) when the library
    initialises; {!Runtime.refresh} loads current values — a scrape
    endpoint calls it right before {!snapshot}, so the gauges are
    point-in-time at each scrape rather than continuously maintained.
    Uses [Gc.quick_stat] (no major-heap walk), so refresh is cheap. *)
module Runtime : sig
  val saturating_int_of_float : float -> int
  (** [int_of_float] clamped to [min_int]/[max_int] (NaN maps to 0):
      cumulative GC word counts on long-lived processes can exceed the
      [int] range, where raw [int_of_float] is undefined. *)

  val refresh : unit -> unit
  (** Update the [runtime.*] and [trace.*] gauges: GC counters and word
      counts from [Gc.quick_stat] ([runtime.gc.minor_collections],
      [runtime.gc.major_collections], [runtime.gc.compactions],
      [runtime.gc.heap_words], [runtime.gc.top_heap_words],
      [runtime.gc.minor_words], [runtime.gc.promoted_words],
      [runtime.gc.major_words]), [runtime.uptime_ms] since library
      initialisation, and the trace ring's [trace.emitted],
      [trace.recorded], [trace.dropped], [trace.capacity]. *)
end
