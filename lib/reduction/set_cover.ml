module Tuple = Events.Tuple
module Ast = Pattern.Ast

type instance = { num_elements : int; sets : int list array }

let validate { num_elements; sets } =
  let covered = Array.make num_elements false in
  let ok = ref (Ok ()) in
  Array.iter
    (fun elements ->
      List.iter
        (fun e ->
          if e < 0 || e >= num_elements then
            ok := Error (Printf.sprintf "element %d out of range" e)
          else covered.(e) <- true)
        elements)
    sets;
  (match !ok with
  | Ok () ->
      Array.iteri
        (fun e c -> if not c then ok := Error (Printf.sprintf "element %d uncovered" e))
        covered
  | Error _ -> ());
  !ok

let brute_force_min_cover { num_elements; sets } =
  let n = Array.length sets in
  let best = ref None in
  let rec go i chosen covered count =
    let better = match !best with Some (c, _) -> count < c | None -> true in
    if not better then ()
    else if Array.for_all Fun.id covered then best := Some (count, chosen)
    else if i < n then begin
      go (i + 1) chosen covered count;
      let covered' = Array.copy covered in
      List.iter (fun e -> covered'.(e) <- true) sets.(i);
      go (i + 1) (i :: chosen) covered' (count + 1)
    end
  in
  go 0 [] (Array.make num_elements false) 0;
  Option.map (fun (_, chosen) -> List.sort Int.compare chosen) !best

let random_instance prng ~num_elements ~num_sets ~density =
  let sets = Array.make num_sets [] in
  for i = 0 to num_sets - 1 do
    for e = 0 to num_elements - 1 do
      if Numeric.Prng.coin prng density then sets.(i) <- e :: sets.(i)
    done
  done;
  (* Patch coverage so the instance is always well-formed. *)
  let covered = Array.make num_elements false in
  Array.iter (List.iter (fun e -> covered.(e) <- true)) sets;
  Array.iteri
    (fun e c ->
      if not c then begin
        let i = Numeric.Prng.int prng num_sets in
        sets.(i) <- e :: sets.(i)
      end)
    covered;
  { num_elements; sets = Array.map (List.sort_uniq Int.compare) sets }

let set_event i = Printf.sprintf "S%d" i
let anchor_event i = Printf.sprintf "SP%d" i
let element_event j = Printf.sprintf "U%d" j

let to_patterns ({ num_elements; sets } as instance) =
  (match validate instance with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Set_cover.to_patterns: " ^ msg));
  let covering_sets j =
    Array.to_list sets
    |> List.mapi (fun i elements -> (i, elements))
    |> List.filter_map (fun (i, elements) ->
           if List.mem j elements then Some (Ast.event (set_event i)) else None)
  in
  let element_gadget j =
    (* SEQ(Uj, AND(S_j1, ..., S_jk)) ATLEAST 2 WITHIN 2 *)
    match covering_sets j with
    | [] -> assert false (* validated *)
    | [ single ] ->
        Ast.seq ~atleast:2 ~within:2 [ Ast.event (element_event j); single ]
    | several -> Ast.seq ~atleast:2 ~within:2 [ Ast.event (element_event j); Ast.and_ several ]
  in
  let anchor_gadget j i =
    (* SEQ(S'_i, Uj) ATLEAST 1 WITHIN 1: moving a Uj drags every S'_i. *)
    Ast.seq ~atleast:1 ~within:1 [ Ast.event (anchor_event i); Ast.event (element_event j) ]
  in
  List.init num_elements element_gadget
  @ List.concat
      (List.init num_elements (fun j ->
           List.init (Array.length sets) (fun i -> anchor_gadget j i)))

let tuple { num_elements; sets } =
  let bindings =
    List.init (Array.length sets) (fun i -> (set_event i, 2))
    @ List.init (Array.length sets) (fun i -> (anchor_event i, 0))
    @ List.init num_elements (fun j -> (element_event j, 1))
  in
  Tuple.of_list bindings

let cover_of_repair { sets; _ } repaired =
  List.init (Array.length sets) Fun.id
  |> List.filter (fun i ->
         match Tuple.find_opt repaired (set_event i) with
         | Some ts -> ts <> 2
         | None -> false)
