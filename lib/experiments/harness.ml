let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let format_table ~title ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init columns width in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let add_row row =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad cell (List.nth widths c)))
      row;
    Buffer.add_char buf '\n'
  in
  add_row header;
  add_row (List.map (fun w -> String.make w '-') widths);
  List.iter add_row rows;
  Buffer.contents buf

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv_of_table ~header rows =
  let line row = String.concat "," (List.map csv_cell row) ^ "\n" in
  String.concat "" (List.map line (header :: rows))

let csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let slug title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
      else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
      else '-')
    title
  |> fun s ->
  (* squeeze dashes and bound the length *)
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c <> '-' || (Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '-')
      then Buffer.add_char buf c)
    s;
  let s = Buffer.contents buf in
  if String.length s > 60 then String.sub s 0 60 else s

let write_csv ~title ~header rows dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (slug title ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv_of_table ~header rows))

let print_table ~title ~header rows =
  Report.Sink.print (format_table ~title ~header rows);
  Report.Sink.print "\n";
  match !csv_dir with
  | Some dir -> write_csv ~title ~header rows dir
  | None -> ()

let f3 x = Printf.sprintf "%.3f" x
let ms seconds = Printf.sprintf "%.3f" (seconds *. 1000.0)

type algorithm =
  | Pattern_full
  | Pattern_single
  | Brute_force of { grid : int; radius : int }
  | Greedy

let algorithm_name = function
  | Pattern_full -> "Pattern(Full)"
  | Pattern_single -> "Pattern(Single)"
  | Brute_force _ -> "Brute-force"
  | Greedy -> "Greedy"

let repair_tuple algorithm net patterns tuple =
  match algorithm with
  | Pattern_full ->
      Explain.Modification.explain_network ~strategy:Explain.Modification.Full net tuple
      |> Option.map (fun r -> r.Explain.Modification.repaired)
  | Pattern_single ->
      Explain.Modification.explain_network ~strategy:Explain.Modification.Single net
        tuple
      |> Option.map (fun r -> r.Explain.Modification.repaired)
  | Brute_force { grid; radius } ->
      Explain.Baselines.brute_force ~grid ~radius patterns tuple
      |> Option.map (fun r -> r.Explain.Baselines.repaired)
  | Greedy ->
      let r = Explain.Baselines.greedy patterns tuple in
      Some r.Explain.Baselines.repaired
