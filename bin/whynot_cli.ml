(* The whynot command-line tool: parse/inspect event pattern queries, match
   tuples, check query consistency (Algorithm 1), explain non-answers by
   timestamp modification (Algorithm 2), and generate benchmark datasets. *)

open Cmdliner
module Ast = Whynot.Pattern.Ast
module Tuple = Whynot.Events.Tuple
module Trace = Whynot.Events.Trace

let pattern_set_conv =
  let parse s =
    match Whynot.Pattern.Parse.pattern_set s with
    | Ok ps -> Ok ps
    | Error msg -> Error (`Msg msg)
  in
  let print ppf ps =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
      Ast.pp ppf ps
  in
  Arg.conv (parse, print)

let query_arg =
  Arg.(
    required
    & pos 0 (some pattern_set_conv) None
    & info [] ~docv:"QUERY"
        ~doc:
          "Event pattern query: one or more patterns separated by ';', e.g. \
           'SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours'.")

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "t"; "input" ] ~docv:"CSV"
        ~doc:"Input trace file (CSV: tuple_id,event,timestamp).")

let tuple_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "tuple" ] ~docv:"ID"
        ~doc:"Restrict to one tuple of the trace (default: all).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the command (even on a nonzero exit), print the engine's \
           metrics snapshot — solver/search counters, state gauges, latency \
           spans — as JSON on stdout. See docs/OBSERVABILITY.md for the \
           schema.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured execution trace of the run (per-query spans \
           and search events) to $(docv). See docs/OBSERVABILITY.md for the \
           schema.")

let trace_format_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("jsonl", Whynot.Report.Trace_json.Jsonl);
             ("chrome", Whynot.Report.Trace_json.Chrome);
             ("folded", Whynot.Report.Trace_json.Folded);
           ])
        Whynot.Report.Trace_json.Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace output format: $(b,jsonl) (one JSON event per line, \
           default), $(b,chrome) (chrome://tracing / Perfetto trace-event \
           JSON), or $(b,folded) (flamegraph folded stacks).")

let trace_sample_arg =
  Arg.(
    value & opt int 1
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "Record every $(docv)-th top-level query trace (deterministic by \
           arrival order; default 1 = trace every query).")

let rt_events_arg =
  Arg.(
    value & flag
    & info [ "rt-events" ]
        ~doc:
          "Profile the OCaml runtime via Runtime_events self-monitoring: \
           decode per-domain GC pauses into runtime.gc.pause.* metrics and \
           attribute pause time to request stages (gc_overlap_us in the \
           access log, /debug/slow and GET /debug/gc). See \
           docs/SERVING.md.")

let print_json v = print_endline (Whynot.Report.Json.to_string ~indent:2 v)

(* Registered via [at_exit] so the snapshot/trace is also written on the
   [exit 1] paths (inconsistent query, no match, ...). *)
let setup_obs metrics trace_file trace_format trace_sample rt_events =
  if metrics then
    at_exit (fun () -> print_json (Whynot.Report.Obs_json.snapshot ()));
  if rt_events then begin
    Whynot.Obs.Rt_events.start ();
    at_exit Whynot.Obs.Rt_events.stop
  end;
  match trace_file with
  | None -> ()
  | Some path ->
      if trace_sample < 1 then begin
        Printf.eprintf "whynot: --trace-sample must be >= 1\n";
        exit 2
      end;
      Whynot.Obs.Trace.configure ~sample:trace_sample ();
      at_exit (fun () ->
          Whynot.Report.Trace_json.write_file ~format:trace_format path
            (Whynot.Obs.Trace.events ()))

let obs_term =
  Term.(
    const setup_obs $ metrics_arg $ trace_out_arg $ trace_format_arg
    $ trace_sample_arg $ rt_events_arg)

let load_trace path =
  match Whynot.Events.Csv_io.read_trace path with
  | Ok trace -> trace
  | Error msg -> (
      Printf.eprintf "error reading %s: %s\n" path msg;
      exit 2)

let selected_tuples trace = function
  | None -> Trace.bindings trace
  | Some id -> (
      match Trace.find_opt trace id with
      | Some t -> [ (id, t) ]
      | None ->
          Printf.eprintf "no tuple %s in trace\n" id;
          exit 2)

(* --- parse --- *)

let parse_cmd =
  let run () query =
    List.iter
      (fun p ->
        let shape =
          match Ast.classify p with
          | Ast.Simple -> "simple temporal network (no AND)"
          | Ast.And_no_seq_inside -> "no SEQ embedded in AND"
          | Ast.General -> "general (SEQ embedded in AND)"
        in
        Format.printf "%a@.  events: %d, size: %d, depth: %d, class: %s@." Ast.pp p
          (Whynot.Events.Event.Set.cardinal (Ast.events p))
          (Ast.size p) (Ast.depth p) shape)
      query;
    let net = Whynot.Tcn.Encode.pattern_set query in
    let count = Whynot.Tcn.Bindings.count net.set_bindings in
    Format.printf "encoding: %d interval conditions, %d binding conditions, %s bindings@."
      (List.length net.set_intervals)
      (List.length net.set_bindings)
      (if Whynot.Tcn.Bindings.count_is_exact net.set_bindings then
         string_of_int count
       else Printf.sprintf ">= %d (overflow)" count)
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a query and show its structure and encoding size.")
    Term.(const run $ obs_term $ query_arg)

(* --- check --- *)

let check_cmd =
  let samples_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "s"; "samples" ]
          ~doc:"Use the randomized algorithm with $(docv) sampled bindings \
                (default: exact full binding)."
          ~docv:"N")
  in
  let run () query samples json =
    let strategy =
      match samples with
      | None -> Whynot.Explain.Consistency.Full
      | Some s -> Whynot.Explain.Consistency.Sampled s
    in
    let report = Whynot.Explain.Consistency.check ~strategy query in
    if json then begin
      print_json (Whynot.Report.Render.consistency report);
      exit (if report.consistent then 0 else 1)
    end;
    if report.consistent then begin
      Format.printf "consistent (checked %d binding(s))@." report.bindings_checked;
      match report.witness with
      | Some w -> Format.printf "witness: %a@." Tuple.pp w
      | None -> ()
    end
    else begin
      Format.printf "inconsistent%s (checked %d binding(s))@."
        (if report.exact then "" else " [randomized: may be a false negative]")
        report.bindings_checked;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Pattern consistency explanation (Algorithm 1): decide whether any \
          assignment of timestamps can satisfy the query.")
    Term.(const run $ obs_term $ query_arg $ samples_arg $ json_arg)

(* --- lint --- *)

let lint_cmd =
  let run () query =
    let report = Whynot.Explain.Lint.run query in
    if not report.consistent then
      Format.printf
        "UNSATISFIABLE: no tuple can ever match this query (pattern \
         consistency explanation)@.";
    if report.findings = [] then Format.printf "no windows to analyse@."
    else
      List.iter
        (fun f -> Format.printf "%a@." Whynot.Explain.Lint.pp_finding f)
        report.findings;
    let before, after = report.normalized_savings in
    if after < before then
      Format.printf
        "hint: normalization shrinks the binding space %d -> %d (see \
         Pattern.Rewrite.normalize)@."
        before after;
    let fatal =
      List.exists
        (fun f ->
          match f.Whynot.Explain.Lint.verdict with
          | Whynot.Explain.Lint.Fatal _ -> true
          | _ -> false)
        report.findings
    in
    if fatal || not report.consistent then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Analyse a query's windows: report bounds that are dead (implied by \
          the rest of the query) or fatal (make the query unsatisfiable).")
    Term.(const run $ obs_term $ query_arg)

(* --- match --- *)

let match_cmd =
  let run () query trace_path tuple_id =
    let trace = load_trace trace_path in
    List.iter
      (fun (id, t) ->
        match Whynot.Pattern.Matcher.explain_failure t query with
        | None -> Format.printf "%s: MATCH@." id
        | Some failure ->
            Format.printf "%s: no match (%a)@." id Whynot.Pattern.Matcher.pp_failure
              failure)
      (selected_tuples trace tuple_id)
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Evaluate the query over a trace (one verdict per tuple).")
    Term.(const run $ obs_term $ query_arg $ input_arg $ tuple_id_arg)

(* --- explain --- *)

let explain_cmd =
  let single_arg =
    Arg.(
      value & flag
      & info [ "single" ]
          ~doc:"Use the single-binding approximation (Definition 8) instead of \
                the exact full binding.")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("bnb", `Bnb); ("bnb-par", `Bnb_par); ("flat", `Flat) ]) `Bnb
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Binding search engine for the exact strategy: $(b,bnb) \
             (branch-and-bound, default), $(b,bnb-par) (branch-and-bound \
             across all cores), or $(b,flat) (enumerate every binding).")
  in
  let run () query trace_path tuple_id single engine json =
    let strategy =
      if single then Whynot.Explain.Modification.Single
      else Whynot.Explain.Modification.Full
    in
    let engine =
      match engine with
      | `Bnb -> Whynot.Explain.Modification.Bnb { domains = 1 }
      | `Bnb_par ->
          Whynot.Explain.Modification.Bnb
            { domains = Domain.recommended_domain_count () }
      | `Flat -> Whynot.Explain.Modification.Flat
    in
    let trace = load_trace trace_path in
    let report = Whynot.Explain.Consistency.check query in
    if not report.consistent then begin
      if json then
        print_json
          (Whynot.Report.Json.Obj
             [
               ("outcome", Whynot.Report.Json.String "inconsistent_query");
               ("consistency", Whynot.Report.Render.consistency report);
             ])
      else
        Format.printf
          "query is inconsistent: no tuple can ever match (pattern consistency \
           explanation)@.";
      exit 1
    end;
    let results =
      List.map
        (fun (id, t) ->
          let outcome =
            Whynot.Explain.Pipeline.explain ~strategy ~engine query t
          in
          (id, t, outcome))
        (selected_tuples trace tuple_id)
    in
    if json then
      print_json
        (Whynot.Report.Json.Obj
           (List.map
              (fun (id, t, outcome) ->
                (id, Whynot.Report.Render.pipeline ~original:t outcome))
              results))
    else
      List.iter
        (fun (id, t, outcome) ->
          match outcome with
          | Whynot.Explain.Pipeline.Already_answer ->
              Format.printf "%s: already matches@." id
          | Whynot.Explain.Pipeline.Modify_timestamps { repaired; cost; _ } ->
              Format.printf "%s: modification cost %d@." id cost;
              List.iter
                (fun (e, old_ts, new_ts) ->
                  Format.printf "  %s: %d -> %d@." e old_ts new_ts)
                (Tuple.diff t repaired)
          | outcome -> Format.printf "%s: %a@." id Whynot.Explain.Pipeline.pp_outcome outcome)
        results
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Timestamp modification explanation (Algorithm 2): minimally modify \
          each non-answer's timestamps to make it match.")
    Term.(
      const run $ obs_term $ query_arg $ input_arg $ tuple_id_arg $ single_arg
      $ engine_arg $ json_arg)

(* --- diagnose --- *)

let diagnose_cmd =
  let run () query trace_path json =
    let trace = load_trace trace_path in
    let report = Whynot.Explain.Diagnose.run query trace in
    if json then print_json (Whynot.Report.Render.diagnose report)
    else Format.printf "%a" Whynot.Explain.Diagnose.pp report
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Aggregate why-not dashboard: failure classes and repair costs over \
          a whole trace.")
    Term.(const run $ obs_term $ query_arg $ input_arg $ json_arg)

(* --- why (top-k explanations) --- *)

let why_cmd =
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~doc:"Number of candidate explanations.")
  in
  let run () query trace_path tuple_id k =
    let trace = load_trace trace_path in
    List.iter
      (fun (id, t) ->
        if Whynot.Pattern.Matcher.matches_set t query then
          Format.printf "%s: already matches@." id
        else
          match Whynot.Explain.Topk.explain ~k query t with
          | None -> Format.printf "%s: query is inconsistent@." id
          | Some { candidates; blames; bindings_tried } ->
              Format.printf "%s: %d candidate explanation(s) over %d binding(s)@." id
                (List.length candidates) bindings_tried;
              List.iteri
                (fun rank c ->
                  Format.printf "  #%d cost %d:@." (rank + 1) c.Whynot.Explain.Topk.cost;
                  List.iter
                    (fun (e, o, n) -> Format.printf "    %s: %d -> %d@." e o n)
                    (Tuple.diff t c.repaired))
                candidates;
              Format.printf "  blame:@.";
              List.iter
                (fun b ->
                  Format.printf "    %s modified in %.0f%% of candidates (mean shift %.1f)@."
                    b.Whynot.Explain.Topk.event (100.0 *. b.frequency) b.mean_shift)
                blames)
      (selected_tuples trace tuple_id)
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Ranked why-not explanations: the k cheapest distinct timestamp \
          modifications, with a per-event blame summary.")
    Term.(const run $ obs_term $ query_arg $ input_arg $ tuple_id_arg $ k_arg)

(* --- fix-query (query modification explanation) --- *)

let fix_query_cmd =
  let run () query trace_path tuple_id =
    let trace = load_trace trace_path in
    let expected = List.map snd (selected_tuples trace tuple_id) in
    match Whynot.Explain.Query_repair.explain query expected with
    | Error f ->
        Format.printf "not fixable by window changes: %a@."
          Whynot.Explain.Query_repair.pp_failure f;
        exit 1
    | Ok { patterns; changes; cost } ->
        if changes = [] then Format.printf "query already accepts all expected tuples@."
        else begin
          Format.printf "total window adjustment: %d@." cost;
          List.iter
            (fun c ->
              Format.printf "  %a@." Whynot.Explain.Query_repair.pp_window_change c)
            changes;
          Format.printf "repaired query:@.";
          List.iter (fun p -> Format.printf "  %a@." Ast.pp p) patterns
        end
  in
  Cmd.v
    (Cmd.info "fix-query"
       ~doc:
         "Query modification explanation: minimally relax the query's \
          ATLEAST/WITHIN bounds so the expected tuples become answers.")
    Term.(const run $ obs_term $ query_arg $ input_arg $ tuple_id_arg)

(* --- detect (streaming) --- *)

let detect_cmd =
  let stream_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "s"; "stream" ] ~docv:"CSV"
          ~doc:"Stream file (CSV: event,timestamp[,tag]), timestamps non-decreasing.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "horizon" ]
          ~doc:"Time horizon for partial matches (default: the query's root WITHIN).")
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("compiled", Whynot.Cep.Detector.Compiled);
               ("naive", Whynot.Cep.Detector.Naive);
             ])
          Whynot.Cep.Detector.Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Detection engine: $(b,compiled) (default; precompiled plan, see \
             docs/DETECTION.md) or $(b,naive) (the reference enumerator).")
  in
  let run () query stream_path horizon engine =
    let instances =
      let lines = In_channel.with_open_text stream_path In_channel.input_lines in
      (* detect runs one detector over the interleaved stream: a fourth
         (partition key) CSV column is accepted but ignored — keyed
         parallel detection is `whynot serve`'s job. *)
      match Whynot.Serve.Ingest.parse_lines lines with
      | Ok keyed ->
          List.map (fun k -> k.Whynot.Serve.Ingest.instance) keyed
      | Error e ->
          Printf.eprintf "%s\n" (Whynot.Serve.Ingest.error_to_string e);
          exit 2
    in
    let detector = Whynot.Cep.Detector.create ~engine ?horizon query in
    let matches = Whynot.Cep.Detector.feed_all detector instances in
    List.iter
      (fun m ->
        Format.printf "match: %a@."
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             (fun ppf (e, tag) ->
               Format.fprintf ppf "%s=%s@@%d" e tag
                 (Tuple.find m.Whynot.Cep.Detector.tuple e)))
          m.Whynot.Cep.Detector.tags)
      matches;
    Format.printf "%d match(es); %d partial(s) live, %d dropped@."
      (List.length matches)
      (Whynot.Cep.Detector.partial_count detector)
      (Whynot.Cep.Detector.dropped detector)
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Run the streaming detector over an interleaved event stream (CSV).")
    Term.(
      const run $ obs_term $ query_arg $ stream_arg $ horizon_arg $ engine_arg)

(* --- serve (live telemetry service) --- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "TCP port to listen on (127.0.0.1 only). Default 0 picks an \
             ephemeral port; the chosen port is printed on stderr.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "horizon" ]
          ~doc:"Time horizon for partial matches (default: the query's root WITHIN).")
  in
  let max_partials_arg =
    Arg.(
      value
      & opt int Whynot.Serve.Service.default_max_partials
      & info [ "max-partials" ] ~docv:"N"
          ~doc:"Capacity bound on the detector's partial-match buffer.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "HTTP worker domains. 1 (default) keeps the sequential accept \
             loop; above 1, an acceptor hands connections to N worker \
             domains over a bounded queue, and the detector pool runs \
             threaded.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Detector shards. Each partition key (the optional fourth \
             ingest CSV column) hashes to one shard; each key gets its own \
             detector. Keyless events pin to shard 0, so 1 (default) \
             behaves exactly like the single sequential detector.")
  in
  let shard_queue_arg =
    Arg.(
      value & opt int Whynot.Serve.Service.default_shard_queue
      & info [ "shard-queue" ] ~docv:"N"
          ~doc:
            "Ingest batches a shard queues before shedding: a batch that \
             finds any of its shards' queues full is refused with HTTP 429 \
             and Retry-After, nothing applied. Only meaningful with \
             --workers or --shards above 1.")
  in
  let backlog_arg =
    Arg.(
      value & opt int 128
      & info [ "backlog" ] ~docv:"N"
          ~doc:"Kernel accept backlog for the listening socket.")
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Feed events from stdin (CSV lines: event,timestamp[,tag]) \
             instead of POST /ingest; match verdicts print to stdout as \
             JSONL and the server exits at EOF. The HTTP endpoints \
             (/metrics, /health, /ready) stay available throughout.")
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("compiled", Whynot.Cep.Detector.Compiled);
               ("naive", Whynot.Cep.Detector.Naive);
             ])
          Whynot.Cep.Detector.Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Detection engine: $(b,compiled) (default) or $(b,naive) (the \
             reference enumerator; see docs/DETECTION.md).")
  in
  let log_level_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("off", None);
               ("error", Some Whynot.Obs.Log.Error);
               ("warn", Some Whynot.Obs.Log.Warn);
               ("info", Some Whynot.Obs.Log.Info);
               ("debug", Some Whynot.Obs.Log.Debug);
             ])
          (Some Whynot.Obs.Log.Warn)
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured JSON log verbosity on stderr: $(b,off), $(b,error), \
             $(b,warn) (default), $(b,info) (per-match events), or \
             $(b,debug) (per-request events). See docs/SERVING.md for the \
             line schema.")
  in
  let slow_threshold_arg =
    Arg.(
      value & opt int 100
      & info [ "slow-threshold" ] ~docv:"MS"
          ~doc:
            "Latency threshold (milliseconds of service + write time) above \
             which a request's full trace is retained for GET /debug/slow. \
             Requests that shed (429) or error (status >= 400) are always \
             retained. 0 retains every request.")
  in
  let slow_capacity_arg =
    Arg.(
      value & opt int Whynot.Obs.Request.default_capacity
      & info [ "slow-capacity" ] ~docv:"N"
          ~doc:
            "Capacity of the /debug/slow retention ring (newest wins). 0 \
             disables tail capture entirely.")
  in
  let access_log_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("off", None);
               ("error", Some Whynot.Obs.Log.Error);
               ("warn", Some Whynot.Obs.Log.Warn);
               ("info", Some Whynot.Obs.Log.Info);
               ("debug", Some Whynot.Obs.Log.Debug);
             ])
          (Some Whynot.Obs.Log.Info)
      & info [ "access-log" ] ~docv:"LEVEL"
          ~doc:
            "Level the per-request serve.access line (request id, route, \
             status, decomposed stage timings) is emitted at — it prints \
             only when --log-level admits that level. $(b,info) is the \
             default; $(b,off) suppresses the line entirely.")
  in
  let run () query port horizon max_partials engine workers shards shard_queue
      backlog use_stdin log_level slow_threshold slow_capacity access_level =
    Whynot.Obs.Log.set_level log_level;
    if slow_threshold < 0 then begin
      Printf.eprintf "whynot serve: --slow-threshold must be >= 0\n";
      exit 2
    end;
    if slow_capacity < 0 then begin
      Printf.eprintf "whynot serve: --slow-capacity must be >= 0\n";
      exit 2
    end;
    Whynot.Obs.Request.configure ~threshold_us:(slow_threshold * 1000)
      ~capacity:slow_capacity ();
    Whynot.Obs.Request.set_access_level access_level;
    if workers < 1 then begin
      Printf.eprintf "whynot serve: --workers must be >= 1\n";
      exit 2
    end;
    if shards < 1 then begin
      Printf.eprintf "whynot serve: --shards must be >= 1\n";
      exit 2
    end;
    let help =
      (* HELP text for /metrics comes from the metric catalog when the
         repo's docs are around; a deployed binary falls back to the
         dotted source names. *)
      let docs_path = "docs/OBSERVABILITY.md" in
      if Sys.file_exists docs_path then
        let docs = In_channel.with_open_text docs_path In_channel.input_all in
        Whynot.Report.Prom_text.help_of_markdown docs
      else fun _ -> None
    in
    (* The pool must be threaded as soon as more than one domain can feed
       it: multiple HTTP workers, or multiple shards (each shard is its
       own domain). With 1 worker and 1 shard everything stays inline on
       one domain — bit-identical to the pre-pool service. *)
    let threaded = workers > 1 || shards > 1 in
    let service =
      Whynot.Serve.Service.create ~engine ?horizon ~max_partials ~shards
        ~shard_queue ~threaded ~http_ingest:(not use_stdin) ~help query
    in
    let server = Whynot.Serve.Http.listen ~backlog ~port () in
    let port = Whynot.Serve.Http.port server in
    Whynot.Serve.Service.log_start ~port;
    Printf.eprintf
      "whynot serve: listening on http://127.0.0.1:%d (metrics at /metrics)\n%!"
      port;
    let handler = Whynot.Serve.Service.handle service in
    let http_loop () =
      if workers > 1 then Whynot.Serve.Http.serve_pool ~workers server handler
      else Whynot.Serve.Http.serve server handler
    in
    if use_stdin then begin
      (* Ingest stays on this domain (HTTP ingest answers 503 in this
         mode); the HTTP loop serves scrapes from its own domain(s). *)
      let http_domain = Domain.spawn http_loop in
      let rec loop lineno =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line ->
            (match
               Whynot.Serve.Service.ingest_line service ~lineno line
             with
            | Ok matches ->
                List.iter
                  (fun m ->
                    print_endline
                      (Whynot.Report.Json.to_string
                         (Whynot.Serve.Service.match_json ~line:lineno m)))
                  matches
            | Error reason ->
                Printf.eprintf "whynot serve: line %d: %s\n" lineno reason);
            loop (lineno + 1)
      in
      loop 1;
      Whynot.Serve.Service.log_stop service;
      Whynot.Serve.Http.stop server;
      Domain.join http_domain;
      Whynot.Serve.Service.shutdown service
    end
    else begin
      let stop _signal =
        Whynot.Serve.Service.log_stop service;
        Whynot.Serve.Http.stop server
      in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      http_loop ();
      Whynot.Serve.Service.shutdown service
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the detector as a long-lived telemetry service: Prometheus \
          /metrics, /health, /ready, and line-delimited event ingest \
          (POST /ingest or --stdin) with JSONL match verdicts.")
    Term.(
      const run $ obs_term $ query_arg $ port_arg $ horizon_arg
      $ max_partials_arg $ engine_arg $ workers_arg $ shards_arg
      $ shard_queue_arg $ backlog_arg $ stdin_arg $ log_level_arg
      $ slow_threshold_arg $ slow_capacity_arg $ access_log_arg)

(* --- convert --- *)

let convert_cmd =
  let in_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT"
         ~doc:"Input trace (.csv or .xes, by extension).")
  in
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT"
         ~doc:"Output trace (.csv or .xes, by extension).")
  in
  let run () input output =
    let load path =
      if Filename.check_suffix path ".xes" then
        match Whynot.Events.Xes.read_file path with
        | Ok (trace, dropped) ->
            if dropped > 0 then
              Printf.eprintf "note: dropped %d repeated event(s) within traces\n" dropped;
            trace
        | Error msg ->
            Printf.eprintf "error reading %s: %s\n" path msg;
            exit 2
      else load_trace path
    in
    let trace = load input in
    if Filename.check_suffix output ".xes" then
      Whynot.Events.Xes.write_file output trace
    else Whynot.Events.Csv_io.write_trace output trace;
    Format.printf "wrote %d tuple(s) to %s@." (Trace.cardinal trace) output
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert traces between the CSV interchange format and XES \
             (IEEE 1849 process-mining event logs).")
    Term.(const run $ obs_term $ in_arg $ out_arg)

(* --- generate --- *)

let generate_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("flight", `Flight); ("rtfm", `Rtfm) ])) None
      & info [] ~docv:"KIND" ~doc:"Dataset kind: $(b,flight) or $(b,rtfm).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"CSV" ~doc:"Output trace file.")
  in
  let tuples_arg =
    Arg.(value & opt int 100 & info [ "n"; "tuples" ] ~doc:"Number of tuples.")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed.") in
  let rate_arg =
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~doc:"Fault injection rate.")
  in
  let distance_arg =
    Arg.(value & opt int 200 & info [ "fault-distance" ] ~doc:"Fault distance.")
  in
  let run () kind out tuples seed rate distance =
    let prng = Whynot.Numeric.Prng.create seed in
    let trace, query =
      match kind with
      | `Flight ->
          let { Whynot.Datagen.Flight.pattern; observed; _ } =
            Whynot.Datagen.Flight.generate prng ~num_events:4 ~days:tuples
          in
          (observed, [ pattern ])
      | `Rtfm ->
          let clean = Whynot.Datagen.Rtfm.generate prng ~tuples in
          (clean, Whynot.Datagen.Rtfm.patterns)
    in
    let trace =
      if rate > 0.0 then Whynot.Datagen.Faults.trace prng ~rate ~distance trace
      else trace
    in
    Whynot.Events.Csv_io.write_trace out trace;
    Format.printf "wrote %d tuples to %s@." (Trace.cardinal trace) out;
    Format.printf "query: %a@."
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Ast.pp)
      query
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic benchmark trace (CSV).")
    Term.(
      const run $ obs_term $ kind_arg $ out_arg $ tuples_arg $ seed_arg $ rate_arg
      $ distance_arg)

let main =
  let doc = "Why-not explanations for event pattern queries (SIGMOD 2021)" in
  Cmd.group (Cmd.info "whynot" ~version:"1.0.0" ~doc)
    [
      parse_cmd;
      check_cmd;
      lint_cmd;
      match_cmd;
      explain_cmd;
      diagnose_cmd;
      why_cmd;
      fix_query_cmd;
      detect_cmd;
      serve_cmd;
      convert_cmd;
      generate_cmd;
    ]

let () = exit (Cmd.eval main)
